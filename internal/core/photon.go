package core

import (
	"fmt"
	"log/slog"
	"time"

	"photon/internal/obs"
	"photon/internal/sim/emu"
	"photon/internal/sim/event"
	"photon/internal/sim/gpu"
	"photon/internal/sim/kernel"
	"photon/internal/stats"
)

// Params are Photon's knobs; DefaultParams matches the paper.
type Params struct {
	// SampleFraction of warps functionally simulated by the online analysis
	// (paper: 1%).
	SampleFraction float64
	// StableBBRate is the instruction-weighted fraction of block types that
	// must be stable to enable basic-block-sampling (paper: 95%).
	StableBBRate float64
	// BBWindow is the least-squares window per basic-block type (paper:
	// 2048).
	BBWindow int
	// WarpWindow is the least-squares window over warps (paper: 1024).
	WarpWindow int
	// Delta is the slope/mean threshold (paper: 3%).
	Delta float64
	// DominantWarpShare gates warp-sampling (paper: 95%).
	DominantWarpShare float64
	// KernelBBVDistance is the GPU BBV matching threshold.
	KernelBBVDistance float64
	// RareBlockShare: blocks below this instruction share are "rare" and
	// handled by the interval model instead of gating the switch.
	RareBlockShare float64
	// CheckInterval throttles how often detectors evaluate stability.
	CheckInterval int
	// DefaultMemLatency seeds the interval model's memory latency before
	// any observation exists.
	DefaultMemLatency float64
}

// DefaultParams returns the paper's configuration.
func DefaultParams() Params {
	return Params{
		SampleFraction:    0.01,
		StableBBRate:      0.95,
		BBWindow:          2048,
		WarpWindow:        1024,
		Delta:             0.03,
		DominantWarpShare: 0.95,
		KernelBBVDistance: 0.05,
		RareBlockShare:    0.002,
		CheckInterval:     64,
		DefaultMemLatency: 120,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.SampleFraction <= 0 || p.SampleFraction > 1 {
		return fmt.Errorf("core: SampleFraction %v out of (0,1]", p.SampleFraction)
	}
	if p.BBWindow < 2 || p.WarpWindow < 2 || p.CheckInterval < 1 {
		return fmt.Errorf("core: windows and check interval must be positive")
	}
	if p.Delta <= 0 || p.StableBBRate <= 0 || p.DominantWarpShare <= 0 {
		return fmt.Errorf("core: thresholds must be positive")
	}
	return nil
}

// Levels selects which sampling tiers are active; Photon runs all three,
// the Figure 15/17 ablations run subsets.
type Levels struct {
	BB     bool
	Warp   bool
	Kernel bool
}

// AllLevels is full Photon.
func AllLevels() Levels { return Levels{BB: true, Warp: true, Kernel: true} }

// Photon is the sampled-simulation controller; it implements gpu.Runner.
// A Photon instance carries kernel history across launches of one
// application, so create one per application run.
type Photon struct {
	params  Params
	levels  Levels
	history *History
	store   *AnalysisStore // optional offline-analysis cache
	metrics *obs.Registry
	log     *obs.Logger
	flight  *obs.FlightRecorder

	// decisions is the per-kernel tier ledger (see ledger.go); launches
	// numbers kernels within this instance.
	decisions []TierDecision
	launches  int
}

// New creates a Photon runner for the given GPU configuration.
func New(cfg gpu.Config, params Params, levels Levels) (*Photon, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Photon{
		params:  params,
		levels:  levels,
		history: NewHistory(params.KernelBBVDistance, cfg.Compute.NumCUs),
	}, nil
}

// MustNew is New that panics on error.
func MustNew(cfg gpu.Config, params Params, levels Levels) *Photon {
	p, err := New(cfg, params, levels)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements gpu.Runner.
func (p *Photon) Name() string {
	switch p.levels {
	case Levels{BB: true, Warp: true, Kernel: true}:
		return "photon"
	case Levels{BB: true}:
		return "bb-sampling"
	case Levels{Warp: true}:
		return "warp-sampling"
	case Levels{Kernel: true}:
		return "kernel-sampling"
	default:
		return fmt.Sprintf("photon(bb=%v,warp=%v,kernel=%v)",
			p.levels.BB, p.levels.Warp, p.levels.Kernel)
	}
}

// History exposes the kernel history (tests and the observation tool use
// it).
func (p *Photon) History() *History { return p.history }

// SetMetrics attaches a telemetry registry. Per-kernel tier decisions,
// detector verdicts, rare-block interval-model events and instruction
// attribution are published into it; a nil registry detaches.
func (p *Photon) SetMetrics(reg *obs.Registry) { p.metrics = reg }

// SetLog attaches a structured logger; tier decisions are logged at Debug
// with detector evidence. A nil logger (the default) costs a nil check.
func (p *Photon) SetLog(l *obs.Logger) { p.log = l }

// SetFlight attaches a flight recorder; every tier decision records one
// bounded-ring event, so a wedged daemon can replay the controller's
// recent choices.
func (p *Photon) SetFlight(f *obs.FlightRecorder) { p.flight = f }

// recordKernel publishes the per-kernel telemetry — which tier produced
// the result and how its instructions split between detailed simulation
// and prediction — and appends the decision to the ledger.
func (p *Photon) recordKernel(name string, profile *Profile, r gpu.KernelResult, dec TierDecision) {
	dec.Kernel = name
	dec.Index = p.launches
	p.launches++
	dec.Tier = r.Mode
	dec.Insts = r.Insts
	dec.DetailedInsts = r.DetailedInsts
	dec.SampledInsts = profile.SampledInsts
	dec.PredictedCycles = float64(r.SimTime)
	dec.DominantShare = profile.GPU.DominantShare
	p.decisions = append(p.decisions, dec)

	reg := p.metrics
	reg.Counter("photon_tier_transitions_total", obs.L("tier", r.Mode)).Inc()
	reg.Counter("photon_insts_detailed_total").Add(r.DetailedInsts)
	if r.Insts > r.DetailedInsts {
		reg.Counter("photon_insts_predicted_total").Add(r.Insts - r.DetailedInsts)
	}
	reg.Counter("photon_insts_sampled_total").Add(profile.SampledInsts)

	p.flight.RecordEvent(obs.FlightEvent{
		Kind: "tier", Tier: r.Mode, Msg: dec.Kernel, Value: float64(dec.Index),
	})
	if p.log.Enabled(slog.LevelDebug) {
		p.log.Debug("kernel tier decision",
			slog.String("kernel", dec.Kernel),
			slog.Int("index", dec.Index),
			slog.String("tier", dec.Tier),
			slog.Uint64("insts", dec.Insts),
			slog.Uint64("detailed_insts", dec.DetailedInsts),
			slog.Float64("predicted_cycles", dec.PredictedCycles),
			slog.Float64("bb_stable_share", dec.BBStableShare),
			slog.Float64("dominant_share", dec.DominantShare))
	}
}

// RunKernel implements gpu.Runner: the full Photon flow for one kernel.
func (p *Photon) RunKernel(g *gpu.GPU, l *kernel.Launch) (gpu.KernelResult, error) {
	start := time.Now()
	shape := MachineShape{
		NumCUs:        g.Config().Compute.NumCUs,
		WarpSlotsPer:  g.Config().Compute.WarpSlotsPerCU(),
		WarpsPerGroup: l.WarpsPerGroup,
	}

	// Step 1 (all levels): online analysis over a sample of warps (served
	// from the offline store when one is attached and warm).
	profile, err := p.analyze(l)
	if err != nil {
		return gpu.KernelResult{}, err
	}

	// Kernel-sampling: when a prior kernel with a matching GPU BBV exists,
	// run this kernel in fast-forward (functional) mode only — keeping the
	// memory image correct for later kernels whose control flow may depend
	// on its outputs — and borrow the prior kernel's IPC for timing. The
	// exact functional instruction count replaces the sample-scaled
	// estimate in the prediction.
	if p.levels.Kernel {
		if rec, ok := p.history.Match(profile.GPU, l.TotalWarps(), profile.MeanWarpInsts); ok && rec.IPC() > 0 {
			insts, err := emu.RunKernelFunctional(l)
			if err != nil {
				return gpu.KernelResult{}, fmt.Errorf("core: kernel-sampling fast-forward: %w", err)
			}
			simTime := float64(insts) / rec.IPC()
			p.history.Add(KernelRecord{
				Name:         l.Name,
				GPU:          profile.GPU,
				Warps:        l.TotalWarps(),
				Insts:        float64(insts),
				SampledInsts: float64(profile.SampledInsts),
				SimTime:      simTime,
			})
			result := gpu.KernelResult{
				SimTime: eventTime(simTime),
				Insts:   insts,
				Mode:    "kernel-sampling",
				Wall:    time.Since(start),
			}
			p.recordKernel(l.Name, profile, result, TierDecision{KernelMatch: true})
			return result, nil
		}
	}

	// Detailed simulation with the per-level detectors attached. Switching
	// is allowed only after one full machine generation retired (every
	// initially-resident warp slot turned over), so the recorded means are
	// not dominated by the cold-start transient.
	minRetires := g.Config().Compute.NumCUs * g.Config().Compute.WarpSlotsPerCU()
	latTab := &stats.LatencyTable{}
	obs := stats.MultiObserver{latTab}
	var bbT *bbTracker
	if p.levels.BB {
		bbT = newBBTracker(profile, p.params, minRetires)
		bbT.setMetrics(p.metrics)
		obs = append(obs, bbT)
	}
	var wT *warpTracker
	if p.levels.Warp && profile.GPU.DominantShare >= p.params.DominantWarpShare {
		wT = newWarpTracker(p.params, minRetires)
		wT.setMetrics(p.metrics)
		obs = append(obs, wT)
	}
	gate := func() bool {
		return (wT != nil && wT.triggered) || (bbT != nil && bbT.triggered)
	}
	res, err := g.RunDetailed(l, obs, gate)
	if err != nil {
		return gpu.KernelResult{}, err
	}

	result := gpu.KernelResult{
		DetailedInsts: res.InstCount,
	}
	switch {
	case res.Complete:
		result.Mode = "full"
		result.SimTime = res.EndTime
		result.Insts = res.InstCount

	case wT != nil && wT.triggered:
		// Warp-sampling (Figure 10, step 3): simulate only the scheduler;
		// every remaining warp takes the window's mean duration.
		result.Mode = "warp-sampling"
		remainingGroups := l.NumWorkgroups - res.NextWG
		end := UniformMakespan(float64(res.GateTime), float64(res.EndTime),
			wT.meanWarpTime(), remainingGroups, shape)
		result.SimTime = eventTime(end)
		skippedWarps := float64(remainingGroups * l.WarpsPerGroup)
		result.Insts = res.InstCount + uint64(skippedWarps*profile.MeanWarpInsts)

	case bbT != nil && bbT.triggered:
		// Basic-block-sampling (Figure 7, step 3): functionally simulate
		// the remaining warps and accumulate their blocks' predicted times.
		result.Mode = "bb-sampling"
		lm := NewLatencyModel(latTab, g.Config().Compute, p.params.DefaultMemLatency)
		durations := make([]float64, 0, l.NumWorkgroups-res.NextWG)
		insts := res.InstCount
		rep := emu.NewReplayer(l, emu.ReplayBatchGroups(l, emu.DefaultReplayBudgetBytes))
		err := rep.RunRange(res.NextWG, l.NumWorkgroups-res.NextWG, func(_ int, warps []emu.Warp) {
			groupDur := 0.0
			for i := range warps {
				w := &warps[i]
				insts += w.InstCount()
				d := bbT.predictWarpTime(w.BBCounts(), lm, l.Program, g.Config().Compute)
				if d > groupDur {
					groupDur = d
				}
			}
			durations = append(durations, groupDur)
		})
		if err != nil {
			return gpu.KernelResult{}, fmt.Errorf("core: bb-sampling fast-forward: %w", err)
		}
		end := PredictMakespan(float64(res.GateTime), float64(res.EndTime), durations, shape)
		result.SimTime = eventTime(end)
		result.Insts = insts

	default:
		// The gate never fired and the run is incomplete — impossible by
		// construction, but fall back to reporting the detailed portion.
		result.Mode = "full"
		result.SimTime = res.EndTime
		result.Insts = res.InstCount
	}

	p.history.Add(KernelRecord{
		Name:         l.Name,
		GPU:          profile.GPU,
		Warps:        l.TotalWarps(),
		Insts:        float64(result.Insts),
		SampledInsts: float64(profile.SampledInsts),
		SimTime:      float64(result.SimTime),
	})
	result.Wall = time.Since(start)
	dec := TierDecision{
		GateCycles:    float64(res.GateTime),
		BBStableShare: bbT.stableShare(),
	}
	dec.WarpSlope, dec.WarpSlopeOK = wT.slope()
	p.recordKernel(l.Name, profile, result, dec)
	return result, nil
}

// eventTime converts a float cycle count to the event clock type, rounding
// to nearest.
func eventTime(v float64) event.Time {
	if v < 0 {
		return 0
	}
	return event.Time(v + 0.5)
}
