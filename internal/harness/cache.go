package harness

import (
	"context"
	"errors"
	"sync"

	"photon/internal/sim/gpu"
	"photon/internal/sim/isa"
	"photon/internal/workloads"
)

// BaselineKey identifies one full-detailed baseline run. Two experiments
// that sweep the same (config, bench, size, block options) cell measure the
// exact same deterministic simulation, so the result can be shared.
type BaselineKey struct {
	Config string
	Bench  string
	Size   int
	Block  isa.BlockOptions
	// Laned distinguishes baselines measured on the quantum-laned engine
	// from serial ones: the two are functionally identical but not
	// cycle-identical. The lane count is deliberately not part of the key —
	// laned results are invariant to it.
	Laned bool
}

// BaselineCache memoizes full-detailed baseline runs across experiments.
// Full mode dominates a sweep's wall time (it is the very bottleneck Photon
// attacks), and fig13/fig15/baselines all re-measure the same cells; with
// the cache each cell is simulated at most once at a time and every other
// consumer blocks on — then shares — that one run. Safe for concurrent use.
//
// The cache is built to outlive a single sweep: photon-serve keeps one for
// the whole process, where runs carry per-job contexts. A run aborted by
// its submitter's context does not poison the entry — the cancellation is
// reported to the callers that were coalesced onto that run, and the next
// lookup of the key simulates it afresh. Terminal outcomes (a result, or a
// non-context error such as a build failure) are cached permanently.
type BaselineCache struct {
	mu      sync.Mutex
	entries map[BaselineKey]*baselineEntry

	simulated int // full runs actually started (cache misses)
	hits      int // lookups served without starting a run
}

// baselineEntry is one key's slot. States, guarded by the cache mutex:
// idle (inflight == nil, !terminal), running (inflight != nil), and
// terminal (res/err fixed forever).
type baselineEntry struct {
	inflight chan struct{} // non-nil while one caller runs the baseline
	terminal bool
	res      AppResult
	err      error
}

// NewBaselineCache returns an empty cache.
func NewBaselineCache() *BaselineCache {
	return &BaselineCache{entries: make(map[BaselineKey]*baselineEntry)}
}

// Full returns the full-detailed AppResult for key, simulating it with
// build() on first use. Concurrent callers of the same key block until the
// single simulation finishes; callers of different keys proceed in parallel.
// A nil cache simply runs the baseline uncached.
func (c *BaselineCache) Full(key BaselineKey, cfg gpu.Config, build func() (*workloads.App, error)) (AppResult, error) {
	return c.FullCtx(context.Background(), key, cfg, build)
}

// FullCtx is Full with cancellation: the context governs both this caller's
// wait and, when this caller is the one elected to simulate, the run itself
// (checked between kernel launches). If the elected run dies of its own
// context, waiting callers see that context error too — they coalesced onto
// a run that never finished — but the entry returns to idle so the next
// lookup re-simulates rather than replaying the cancellation forever.
func (c *BaselineCache) FullCtx(ctx context.Context, key BaselineKey, cfg gpu.Config, build func() (*workloads.App, error)) (AppResult, error) {
	return c.FullLanesCtx(ctx, key, cfg, 0, build)
}

// FullLanesCtx is FullCtx with an intra-run lane request for the baseline
// simulation (0 = serial engine; see gpu.SetLanes). Callers measuring laned
// sweeps pass a key with Laned set so the cache never hands a serial
// baseline to a laned consumer or vice versa.
func (c *BaselineCache) FullLanesCtx(ctx context.Context, key BaselineKey, cfg gpu.Config, lanes int, build func() (*workloads.App, error)) (AppResult, error) {
	if c == nil {
		return runFull(ctx, cfg, lanes, build)
	}
	counted := false // this lookup was tallied as a hit
	for {
		c.mu.Lock()
		e, ok := c.entries[key]
		if !ok {
			e = &baselineEntry{}
			c.entries[key] = e
		}
		if e.terminal {
			if !counted {
				c.hits++
			}
			res, err := e.res, e.err
			c.mu.Unlock()
			return res, err
		}
		if e.inflight == nil {
			// We are the elected runner for this key.
			done := make(chan struct{})
			e.inflight = done
			c.simulated++
			c.mu.Unlock()

			res, err := runFull(ctx, cfg, lanes, build)

			c.mu.Lock()
			e.inflight = nil
			if err == nil || !isCtxErr(err) {
				e.terminal, e.res, e.err = true, res, err
			}
			c.mu.Unlock()
			close(done)
			return res, err
		}
		// Someone else is running this key: wait for them, then loop to
		// re-read the entry (they may have finished terminally, or been
		// cancelled, in which case the next iteration elects a new runner —
		// possibly us).
		done := e.inflight
		if !counted {
			c.hits++
			counted = true
		}
		c.mu.Unlock()
		select {
		case <-done:
		case <-ctx.Done():
			return AppResult{}, ctx.Err()
		}
	}
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func runFull(ctx context.Context, cfg gpu.Config, lanes int, build func() (*workloads.App, error)) (AppResult, error) {
	app, err := build()
	if err != nil {
		return AppResult{}, err
	}
	return runAppObsCtx(ctx, cfg, app, gpu.FullRunner{}, AppObs{Lanes: lanes})
}

// Simulated reports how many full baseline runs were actually started.
func (c *BaselineCache) Simulated() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.simulated
}

// Hits reports how many lookups were served without a new simulation.
func (c *BaselineCache) Hits() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}
