package workloads

import (
	"fmt"
	"math"

	"photon/internal/sim/isa"
	"photon/internal/sim/kernel"
	"photon/internal/sim/mem"
)

// KMeans clustering (Hetero-Mark carries a KMeans benchmark; this is an
// extension workload here since it needs the atomic instructions the paper's
// MGPUSim lacked). Each iteration launches four kernels — assign, clear,
// accumulate (atomic float adds into per-cluster sums), divide — giving a
// multi-kernel iteration structure like PageRank's, with heavier per-thread
// compute in the assign kernel.
const (
	kmDims       = 4
	kmClusters   = 16
	kmIterations = 6
)

// kmAssignProgram: for each point, find the nearest centroid.
// Args: s8=points, s9=centroids, s10=assign, s11=n.
func kmAssignProgram() *isa.Program {
	b := isa.NewBuilder("km_assign")
	emitTID(b, 1, 4)
	emitBoundsGuard(b, 1, 11, 0, "done")
	// Point base address: points + tid*D*4.
	b.I(isa.OpVLShl, isa.V(2), isa.V(1), isa.Imm(int32(log2(kmDims*4))))
	b.I(isa.OpVAdd, isa.V(2), isa.V(2), isa.S(8))
	for d := 0; d < kmDims; d++ {
		b.Load(isa.OpVLoad, isa.V(10+d), isa.V(2), int32(4*d)) // coords
	}
	b.Waitcnt(0)
	b.I(isa.OpVMov, isa.V(5), f32imm(math.MaxFloat32)) // best distance
	b.I(isa.OpVMov, isa.V(6), isa.Imm(0))              // best index
	b.I(isa.OpSMov, isa.S(5), isa.Imm(0))              // k
	b.I(isa.OpSMov, isa.S(6), isa.S(9))                // &centroids[k][0]
	b.Label("k")
	b.I(isa.OpVMov, isa.V(7), f32imm(0)) // dist
	for d := 0; d < kmDims; d++ {
		b.Load(isa.OpSLoad, isa.S(7), isa.S(6), int32(4*d))
		b.I(isa.OpVFSub, isa.V(8), isa.V(10+d), isa.S(7))
		b.I(isa.OpVFFma, isa.V(7), isa.V(8), isa.V(8), isa.V(7))
	}
	// if dist < best { best = dist; bestIdx = k } via lane masking.
	b.I(isa.OpVFCmpLt, isa.Operand{}, isa.V(7), isa.V(5))
	b.I(isa.OpSAndSaveExec, isa.Mask(1))
	b.I(isa.OpVMov, isa.V(5), isa.V(7))
	b.I(isa.OpVMov, isa.V(6), isa.S(5))
	b.I(isa.OpSSetExec, isa.Operand{}, isa.Mask(1))
	b.I(isa.OpSAdd, isa.S(6), isa.S(6), isa.Imm(kmDims*4))
	b.I(isa.OpSAdd, isa.S(5), isa.S(5), isa.Imm(1))
	b.I(isa.OpSCmpLt, isa.Operand{}, isa.S(5), isa.Imm(kmClusters))
	b.Br(isa.OpCBranchSCC1, "k")
	b.I(isa.OpVLShl, isa.V(9), isa.V(1), isa.Imm(2))
	b.I(isa.OpVAdd, isa.V(9), isa.V(9), isa.S(10))
	b.Store(isa.OpVStore, isa.V(9), isa.V(6), 0)
	emitEpilogue(b, 0, "done")
	return b.MustBuild()
}

// kmClearProgram zeroes sums (K*D floats) and counts (K words).
// Args: s8=sums, s9=counts, s10=total words (K*D + K).
func kmClearProgram() *isa.Program {
	b := isa.NewBuilder("km_clear")
	emitTID(b, 1, 4)
	emitBoundsGuard(b, 1, 10, 0, "done")
	// sums and counts are allocated contiguously; clear as one range.
	b.I(isa.OpVLShl, isa.V(2), isa.V(1), isa.Imm(2))
	b.I(isa.OpVAdd, isa.V(2), isa.V(2), isa.S(8))
	b.I(isa.OpVMov, isa.V(3), isa.Imm(0))
	b.Store(isa.OpVStore, isa.V(2), isa.V(3), 0)
	emitEpilogue(b, 0, "done")
	return b.MustBuild()
}

// kmAccumProgram: atomically accumulate each point into its cluster's sums
// and bump the cluster count.
// Args: s8=points, s9=assign, s10=sums, s11=counts, s12=n.
func kmAccumProgram() *isa.Program {
	b := isa.NewBuilder("km_accum")
	emitTID(b, 1, 4)
	emitBoundsGuard(b, 1, 12, 0, "done")
	b.I(isa.OpVLShl, isa.V(2), isa.V(1), isa.Imm(2))
	b.I(isa.OpVAdd, isa.V(3), isa.V(2), isa.S(9))
	b.Load(isa.OpVLoad, isa.V(4), isa.V(3), 0) // cluster = assign[tid]
	b.Waitcnt(0)
	b.I(isa.OpVLShl, isa.V(5), isa.V(1), isa.Imm(int32(log2(kmDims*4))))
	b.I(isa.OpVAdd, isa.V(5), isa.V(5), isa.S(8)) // &points[tid][0]
	b.I(isa.OpVLShl, isa.V(6), isa.V(4), isa.Imm(int32(log2(kmDims*4))))
	b.I(isa.OpVAdd, isa.V(6), isa.V(6), isa.S(10)) // &sums[cluster][0]
	for d := 0; d < kmDims; d++ {
		b.Load(isa.OpVLoad, isa.V(7), isa.V(5), int32(4*d))
		b.Waitcnt(0)
		b.I(isa.OpVAtomicFAdd, isa.Operand{}, isa.V(6), isa.V(7))
		// Shift the sums pointer by patching the offset instead: atomics
		// carry no offset operand field here, so advance the address.
		b.I(isa.OpVAdd, isa.V(6), isa.V(6), isa.Imm(4))
	}
	b.I(isa.OpVLShl, isa.V(8), isa.V(4), isa.Imm(2))
	b.I(isa.OpVAdd, isa.V(8), isa.V(8), isa.S(11))
	b.I(isa.OpVAtomicAdd, isa.Operand{}, isa.V(8), isa.Imm(1))
	b.Waitcnt(0)
	emitEpilogue(b, 0, "done")
	return b.MustBuild()
}

// kmDivideProgram: centroids[k][d] = sums[k][d] / max(counts[k], 1).
// Args: s8=sums, s9=counts, s10=centroids, s11=K*D.
func kmDivideProgram() *isa.Program {
	b := isa.NewBuilder("km_divide")
	emitTID(b, 1, 4)
	emitBoundsGuard(b, 1, 11, 0, "done")
	b.I(isa.OpVLShr, isa.V(2), isa.V(1), isa.Imm(int32(log2(kmDims)))) // k
	b.I(isa.OpVLShl, isa.V(3), isa.V(1), isa.Imm(2))
	b.I(isa.OpVAdd, isa.V(3), isa.V(3), isa.S(8))
	b.Load(isa.OpVLoad, isa.V(4), isa.V(3), 0) // sum
	b.I(isa.OpVLShl, isa.V(5), isa.V(2), isa.Imm(2))
	b.I(isa.OpVAdd, isa.V(5), isa.V(5), isa.S(9))
	b.Load(isa.OpVLoad, isa.V(6), isa.V(5), 0) // count
	b.Waitcnt(0)
	b.I(isa.OpVMax, isa.V(6), isa.V(6), isa.Imm(1))
	b.I(isa.OpVCvtI2F, isa.V(7), isa.V(6))
	b.I(isa.OpVFRcp, isa.V(7), isa.V(7))
	b.I(isa.OpVFMul, isa.V(8), isa.V(4), isa.V(7))
	b.I(isa.OpVLShl, isa.V(9), isa.V(1), isa.Imm(2))
	b.I(isa.OpVAdd, isa.V(9), isa.V(9), isa.S(10))
	b.Store(isa.OpVStore, isa.V(9), isa.V(8), 0)
	emitEpilogue(b, 0, "done")
	return b.MustBuild()
}

// BuildKMeans constructs the KMeans extension workload: warps*64 points,
// kmClusters clusters, kmIterations iterations of 4 kernels each.
func BuildKMeans(warps int) (*App, error) {
	if warps <= 0 {
		return nil, fmt.Errorf("kmeans: warps must be positive")
	}
	m := mem.NewFlat()
	n := warps * kernel.WavefrontSize
	points := m.Alloc(uint64(4 * n * kmDims))
	centroids := m.Alloc(4 * kmClusters * kmDims)
	assign := m.Alloc(uint64(4 * n))
	sums := m.Alloc(4 * kmClusters * kmDims)
	counts := m.Alloc(4 * kmClusters)
	if counts != sums+uint64(4*kmClusters*kmDims) {
		// The clear kernel wipes sums and counts as one contiguous range;
		// the bump allocator guarantees adjacency for the 256-byte-aligned
		// sums block, but guard against future allocator changes.
		return nil, fmt.Errorf("kmeans: sums/counts not contiguous")
	}

	rng := newRNG(0x4235)
	hostPts := make([]float32, n*kmDims)
	for i := range hostPts {
		hostPts[i] = rng.float32n() * 10
	}
	m.WriteFloats(points, hostPts)
	hostInit := make([]float32, kmClusters*kmDims)
	for i := range hostInit {
		hostInit[i] = rng.float32n() * 10
	}
	m.WriteFloats(centroids, hostInit)

	clearWords := kmClusters*kmDims + kmClusters
	clearWarps := (clearWords + kernel.WavefrontSize - 1) / kernel.WavefrontSize
	divWarps := (kmClusters*kmDims + kernel.WavefrontSize - 1) / kernel.WavefrontSize

	assignProg := kmAssignProgram()
	clearProg := kmClearProgram()
	accumProg := kmAccumProgram()
	divProg := kmDivideProgram()

	app := &App{Name: "KMeans", Mem: m}
	for it := 0; it < kmIterations; it++ {
		app.Launches = append(app.Launches,
			&kernel.Launch{Name: "km_assign", Program: assignProg, Memory: m,
				NumWorkgroups: warps, WarpsPerGroup: 1,
				Args: []uint32{uint32(points), uint32(centroids), uint32(assign), uint32(n)}},
			&kernel.Launch{Name: "km_clear", Program: clearProg, Memory: m,
				NumWorkgroups: clearWarps, WarpsPerGroup: 1,
				Args: []uint32{uint32(sums), uint32(counts), uint32(clearWords)}},
			&kernel.Launch{Name: "km_accum", Program: accumProg, Memory: m,
				NumWorkgroups: warps, WarpsPerGroup: 1,
				Args: []uint32{uint32(points), uint32(assign), uint32(sums), uint32(counts), uint32(n)}},
			&kernel.Launch{Name: "km_divide", Program: divProg, Memory: m,
				NumWorkgroups: divWarps, WarpsPerGroup: 1,
				Args: []uint32{uint32(sums), uint32(counts), uint32(centroids), uint32(kmClusters * kmDims)}},
		)
	}

	app.Check = func() error {
		// Sanity invariants rather than bit-exact comparison: atomic float
		// accumulation order differs between schedules, so centroids can
		// drift in the last bits. Counts, however, are exact integers.
		total := uint32(0)
		for k := 0; k < kmClusters; k++ {
			total += m.Read32(counts + uint64(4*k))
		}
		if total != uint32(n) {
			return fmt.Errorf("kmeans: counts sum to %d, want %d", total, n)
		}
		for i := 0; i < kmClusters*kmDims; i++ {
			v := m.ReadF32(centroids + uint64(4*i))
			if v != v || v < -1e6 || v > 1e6 { // NaN or absurd
				return fmt.Errorf("kmeans: centroid word %d = %v", i, v)
			}
		}
		for i := 0; i < n; i += max(1, n/97) {
			if a := m.Read32(assign + uint64(4*i)); a >= kmClusters {
				return fmt.Errorf("kmeans: assign[%d] = %d out of range", i, a)
			}
		}
		return nil
	}
	return app, nil
}
