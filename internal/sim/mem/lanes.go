package mem

import (
	"sort"

	"photon/internal/obs"
	"photon/internal/sim/event"
)

// This file is the memory system's half of the conservative time-quantum
// parallelization of a detailed run (see internal/sim/timing/laned.go for
// the coordinator). The partition invariant: each lane exclusively owns a
// contiguous run of scalar blocks, hence its CUs' L1V caches and the L1I/L1K
// caches those blocks share. Within a quantum a lane accesses only what it
// owns, through a LanePort; everything shared — L2 banks, DRAM, global
// atomics — is recorded as a laneReq and drained by the coordinator at the
// barrier, single-threaded, in (at, cu, seq) order. That order is a
// property of the simulated machine, not of the partition, so any lane
// count replays the identical shared-memory schedule.

// QuantumDelta returns Δ, the conservative quantum length: the minimum
// virtual latency after which a memory operation issued in one lane can
// become visible to another. Every cross-lane interaction goes through the
// L2 coherence point, so the earliest completion of a shared request issued
// at time t is t + L2 hit latency; lanes may therefore free-run Δ cycles
// past a barrier without missing cross-lane effects.
func (h *Hierarchy) QuantumDelta() event.Time { return h.cfg.L2.HitLatency }

// laneReq is one deferred shared-hierarchy access.
type laneReq struct {
	at      event.Time // when the request leaves the lane (L1-miss departure or atomic issue)
	cu      int
	seq     uint64 // per-CU issue order; (at, cu, seq) is the drain sort key
	line    uint64
	write   bool
	atomic  bool
	resolve func(done event.Time) // nil for fire-and-forget writebacks
}

// laneJoin aggregates the completions of one warp-level memory operation
// that split into several line requests; it calls complete once, with the
// slowest line's time. Joins are pooled per port so steady-state issue is
// allocation-free.
type laneJoin struct {
	p        *LanePort
	pending  int
	start    event.Time
	max      event.Time
	shard    *obs.HistogramShard // level latency shard; nil for atomics (L2 observes itself)
	complete func(event.Time)
	resolve  func(event.Time) // cached closure feeding finish
}

func (j *laneJoin) finish(done event.Time) {
	if done > j.max {
		j.max = done
	}
	if j.shard != nil {
		j.shard.Observe(float64(done - j.start))
	}
	j.pending--
	if j.pending == 0 {
		c, m, p := j.complete, j.max, j.p
		j.complete = nil
		p.joins = append(p.joins, j)
		c(m)
	}
}

// LanePort is a lane's gateway into the memory system. It mirrors the
// Hierarchy access surface (vector/atomic/scalar/fetch) in completion-
// callback form: hits in lane-owned L1s complete synchronously with the
// exact serial-path arithmetic, misses and atomics are recorded for the
// barrier drain. A port is owned by one lane goroutine; the coordinator
// touches it only between quanta, with the happens-before edge supplied by
// the lane barrier.
type LanePort struct {
	h          *Hierarchy
	cuLo, cuHi int // inclusive CU range, aligned to scalar blocks

	reqs []laneReq
	seqs []uint64 // per-CU request counters, indexed cu-cuLo

	joins []*laneJoin

	latV, latI, latK *obs.HistogramShard
}

// NewLanePort returns the port for the lane owning CUs [cuLo, cuHi]. The
// range must cover whole scalar blocks — the L1I/L1K caches are shared per
// block and must not straddle lanes.
func (h *Hierarchy) NewLanePort(cuLo, cuHi int) *LanePort {
	if cuLo%h.cfg.CUsPerScalarBlock != 0 || (cuHi+1)%h.cfg.CUsPerScalarBlock != 0 {
		panic("mem: lane CU range must align to scalar blocks")
	}
	return &LanePort{
		h:    h,
		cuLo: cuLo,
		cuHi: cuHi,
		seqs: make([]uint64, cuHi-cuLo+1),
		latV: h.l1v[cuLo].mx.latency.NewShard(),
		latI: h.l1i[cuLo/h.cfg.CUsPerScalarBlock].mx.latency.NewShard(),
		latK: h.l1k[cuLo/h.cfg.CUsPerScalarBlock].mx.latency.NewShard(),
	}
}

func (p *LanePort) record(at event.Time, cu int, line uint64, write, atomic bool, resolve func(event.Time)) {
	i := cu - p.cuLo
	p.seqs[i]++
	p.reqs = append(p.reqs, laneReq{
		at: at, cu: cu, seq: p.seqs[i],
		line: line, write: write, atomic: atomic, resolve: resolve,
	})
}

func (p *LanePort) getJoin(now event.Time, shard *obs.HistogramShard, complete func(event.Time)) *laneJoin {
	var j *laneJoin
	if n := len(p.joins); n > 0 {
		j = p.joins[n-1]
		p.joins[n-1] = nil
		p.joins = p.joins[:n-1]
	} else {
		j = &laneJoin{p: p}
		j.resolve = j.finish
	}
	j.start, j.max = now, now
	j.shard = shard
	j.complete = complete
	j.pending = 0
	return j
}

// VectorAccess is Hierarchy.VectorAccess in callback form: complete fires
// exactly once with the slowest line's completion time — synchronously when
// every coalesced line hits the lane's L1V, at the quantum barrier
// otherwise.
func (p *LanePort) VectorAccess(now event.Time, cuID int, addrs []uint64, write bool, complete func(event.Time)) {
	h := p.h
	if len(addrs) == 0 {
		complete(now + h.cfg.L1V.HitLatency)
		return
	}
	l1 := h.l1v[cuID]
	var lines [64]uint64
	n := 0
outer:
	for _, a := range addrs {
		la := a &^ uint64(LineSize-1)
		for i := 0; i < n; i++ {
			if lines[i] == la {
				continue outer
			}
		}
		lines[n] = la
		n++
	}
	j := p.getJoin(now, p.latV, complete)
	sync := now
	for i := 0; i < n; i++ {
		done, pend := l1.accessAsync(now, lines[i], write, cuID, p, j.resolve)
		if pend {
			j.pending++
		} else {
			p.latV.Observe(float64(done - now))
			if done > sync {
				sync = done
			}
		}
	}
	if j.pending == 0 {
		j.complete = nil
		p.joins = append(p.joins, j)
		complete(sync)
		return
	}
	if sync > j.max {
		j.max = sync
	}
}

// AtomicAccess defers every per-lane atomic to the barrier: atomics execute
// at the L2 coherence point, which lanes never touch mid-quantum. The
// request carries write=true and the atomic flag so the drain balances the
// conservation equation exactly like the serial path.
func (p *LanePort) AtomicAccess(now event.Time, cuID int, addrs []uint64, complete func(event.Time)) {
	if len(addrs) == 0 {
		complete(now + p.h.cfg.L2.HitLatency)
		return
	}
	j := p.getJoin(now, nil, complete)
	j.pending = len(addrs)
	for _, a := range addrs {
		p.record(now, cuID, a&^uint64(LineSize-1), true, true, j.resolve)
	}
}

// ScalarAccess is Hierarchy.ScalarAccess in callback form.
func (p *LanePort) ScalarAccess(now event.Time, cuID int, addr uint64, complete func(event.Time)) {
	blk := cuID / p.h.cfg.CUsPerScalarBlock
	j := p.getJoin(now, p.latK, complete)
	j.pending = 1
	done, pend := p.h.l1k[blk].accessAsync(now, addr&^uint64(LineSize-1), false, cuID, p, j.resolve)
	if !pend {
		j.complete = nil
		p.joins = append(p.joins, j)
		p.latK.Observe(float64(done - now))
		complete(done)
	}
}

// InstFetch is Hierarchy.InstFetch in callback form.
func (p *LanePort) InstFetch(now event.Time, cuID int, instAddr uint64, complete func(event.Time)) {
	blk := cuID / p.h.cfg.CUsPerScalarBlock
	j := p.getJoin(now, p.latI, complete)
	j.pending = 1
	done, pend := p.h.l1i[blk].accessAsync(now, instAddr&^uint64(LineSize-1), false, cuID, p, j.resolve)
	if !pend {
		j.complete = nil
		p.joins = append(p.joins, j)
		p.latI.Observe(float64(done - now))
		complete(done)
	}
}

// PendingRequests reports how many shared-hierarchy requests await the next
// drain (tests and the coordinator's quantum accounting use it).
func (p *LanePort) PendingRequests() int { return len(p.reqs) }

// laneReqLess is the (at, cu, seq) drain order. The key is total — seq is
// per-CU unique — so the sorted order is one specific permutation regardless
// of input order or sort stability.
func laneReqLess(a, b *laneReq) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.cu != b.cu {
		return a.cu < b.cu
	}
	return a.seq < b.seq
}

// laneReqsSorted reports whether buf is already in drain order; the linear
// scan is the precondition for skipping the sort, so skipping can never
// change the drained order.
func laneReqsSorted(buf []laneReq) bool {
	for i := 1; i < len(buf); i++ {
		if laneReqLess(&buf[i], &buf[i-1]) {
			return false
		}
	}
	return true
}

// DrainLaneRequests replays every port's deferred requests into the shared
// L2/DRAM in (at, cu, seq) order and fires their resolve callbacks with the
// completion times. The sort key is partition-invariant — at and the per-CU
// seq depend only on the simulated machine's event order, which the quantum
// protocol fixes — so any lane count produces the same shared-memory
// schedule, which is the laned engine's determinism argument. A single port
// skips the merge copy, and the sort runs only when a linear scan finds the
// batch out of order; both shortcuts preserve the exact drain order. Must be
// called with all lanes parked (the coordinator owns everything).
func (h *Hierarchy) DrainLaneRequests(ports []*LanePort) {
	var buf []laneReq
	if len(ports) == 1 {
		// Single port: its buffer is already the whole batch — swap it with
		// the drain buffer instead of copying, so anything the resolve
		// callbacks record lands in the port's fresh (detached) slice.
		p := ports[0]
		if len(p.reqs) == 0 {
			return
		}
		buf, p.reqs = p.reqs, h.drainBuf[:0]
	} else {
		total := 0
		for _, p := range ports {
			total += len(p.reqs)
		}
		if total == 0 {
			return
		}
		buf = h.drainBuf[:0]
		for _, p := range ports {
			buf = append(buf, p.reqs...)
			p.reqs = p.reqs[:0]
		}
	}
	if !laneReqsSorted(buf) {
		sort.Slice(buf, func(i, j int) bool { return laneReqLess(&buf[i], &buf[j]) })
	}
	r := l2Router{h}
	for i := range buf {
		rq := &buf[i]
		if rq.atomic {
			h.atomicAccesses++
		}
		done := r.Access(rq.at, rq.line, rq.write)
		if rq.resolve != nil {
			rq.resolve(done)
		}
		buf[i] = laneReq{} // release the closure references
	}
	h.drainBuf = buf[:0]
}

// FlushLaneTelemetry folds lane-local telemetry into the shared registry
// handles after a laned run: the L1 levels' plain per-cache counters (which
// accessAsync kept counting while skipping the shared atomics) and each
// port's latency shards. L2 and DRAM are excluded — the barrier drain goes
// through the ordinary Access path, which publishes inline. Call exactly
// once per laned run, after the final drain; the serial path must never
// call it (Access already published).
func (h *Hierarchy) FlushLaneTelemetry(ports []*LanePort) {
	for _, group := range [][]*Cache{h.l1v, h.l1i, h.l1k} {
		for _, c := range group {
			c.mx.hits.Add(c.hits)
			c.mx.misses.Add(c.misses)
			c.mx.evictions.Add(c.evictions)
			c.mx.writebacks.Add(c.writebacks)
		}
	}
	for _, p := range ports {
		p.latV.FlushTo(h.l1v[p.cuLo].mx.latency)
		blk := p.cuLo / h.cfg.CUsPerScalarBlock
		p.latI.FlushTo(h.l1i[blk].mx.latency)
		p.latK.FlushTo(h.l1k[blk].mx.latency)
	}
}
