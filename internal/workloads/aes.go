package workloads

import (
	"fmt"

	"photon/internal/sim/isa"
	"photon/internal/sim/kernel"
	"photon/internal/sim/mem"
)

// AES-256 as a GPU kernel: each thread encrypts one 16-byte block with the
// classic four T-table formulation. The tables and the expanded key schedule
// are computed on the host (below, from first principles) and placed in GPU
// memory; the kernel is a long straight-line instruction sequence with
// data-dependent table lookups — the paper's example of a "long instruction
// sequence" complex workload.

// aesSbox computes the AES S-box from GF(2^8) inversion and the affine map.
func aesSbox() [256]byte {
	var sbox [256]byte
	// Build log/antilog tables over GF(2^8) with generator 3.
	var exp [256]byte
	var lg [256]byte
	x := byte(1)
	for i := 0; i < 255; i++ {
		exp[i] = x
		lg[x] = byte(i)
		// multiply x by 3 = x ^ xtime(x)
		x ^= xtime(x)
	}
	inv := func(a byte) byte {
		if a == 0 {
			return 0
		}
		return exp[(255-int(lg[a]))%255]
	}
	for i := 0; i < 256; i++ {
		v := inv(byte(i))
		// Affine transformation.
		s := v ^ rotl8(v, 1) ^ rotl8(v, 2) ^ rotl8(v, 3) ^ rotl8(v, 4) ^ 0x63
		sbox[i] = s
	}
	return sbox
}

func xtime(a byte) byte {
	if a&0x80 != 0 {
		return a<<1 ^ 0x1b
	}
	return a << 1
}

func rotl8(a byte, n uint) byte { return a<<n | a>>(8-n) }

// aesTables returns Te0..Te3, the round-function tables.
func aesTables() (te [4][256]uint32, sboxW [256]uint32) {
	sbox := aesSbox()
	for i := 0; i < 256; i++ {
		s := sbox[i]
		s2 := xtime(s)
		s3 := s2 ^ s
		w := uint32(s2)<<24 | uint32(s)<<16 | uint32(s)<<8 | uint32(s3)
		te[0][i] = w
		te[1][i] = w>>8 | w<<24
		te[2][i] = w>>16 | w<<16
		te[3][i] = w>>24 | w<<8
		sboxW[i] = uint32(s)
	}
	return te, sboxW
}

// aesExpandKey256 produces the 60-word AES-256 key schedule.
func aesExpandKey256(key [32]byte) [60]uint32 {
	sbox := aesSbox()
	var w [60]uint32
	for i := 0; i < 8; i++ {
		w[i] = uint32(key[4*i])<<24 | uint32(key[4*i+1])<<16 |
			uint32(key[4*i+2])<<8 | uint32(key[4*i+3])
	}
	rcon := uint32(1)
	subWord := func(x uint32) uint32 {
		return uint32(sbox[x>>24])<<24 | uint32(sbox[(x>>16)&0xff])<<16 |
			uint32(sbox[(x>>8)&0xff])<<8 | uint32(sbox[x&0xff])
	}
	for i := 8; i < 60; i++ {
		t := w[i-1]
		switch {
		case i%8 == 0:
			t = subWord(t<<8|t>>24) ^ rcon<<24
			rcon = uint32(xtime(byte(rcon)))
		case i%8 == 4:
			t = subWord(t)
		}
		w[i] = w[i-8] ^ t
	}
	return w
}

// aesEncryptBlockRef is the host reference encryption (T-table formulation,
// identical math to the kernel). Words are big-endian packed.
func aesEncryptBlockRef(rk [60]uint32, in [4]uint32) [4]uint32 {
	te, sboxW := aesTables()
	s := [4]uint32{in[0] ^ rk[0], in[1] ^ rk[1], in[2] ^ rk[2], in[3] ^ rk[3]}
	for r := 1; r < 14; r++ {
		var t [4]uint32
		for i := 0; i < 4; i++ {
			t[i] = te[0][s[i]>>24] ^
				te[1][(s[(i+1)%4]>>16)&0xff] ^
				te[2][(s[(i+2)%4]>>8)&0xff] ^
				te[3][s[(i+3)%4]&0xff] ^
				rk[4*r+i]
		}
		s = t
	}
	var out [4]uint32
	for i := 0; i < 4; i++ {
		out[i] = sboxW[s[i]>>24]<<24 |
			sboxW[(s[(i+1)%4]>>16)&0xff]<<16 |
			sboxW[(s[(i+2)%4]>>8)&0xff]<<8 |
			sboxW[s[(i+3)%4]&0xff]
		out[i] ^= rk[56+i]
	}
	return out
}

// aesProgram emits the kernel. State words live in v10..v13. Args: s8=in,
// s9=out, s10=rk (key schedule), s11=te0, s12=te1, s13=te2, s14=te3,
// s15=sbox, s16=n (blocks).
func aesProgram() *isa.Program {
	b := isa.NewBuilder("aes256")
	const (
		vTID, vOff = 1, 2
		vS         = 10 // v10..v13 state
		vT         = 14 // v14..v17 next state
		vTmp       = 18
		vTmp2      = 19
		sRK        = 4 // running round-key pointer
		sW         = 5 // loaded round-key word
	)
	emitTID(b, vTID, 6)
	emitBoundsGuard(b, vTID, 16, 0, "done")
	b.I(isa.OpVLShl, isa.V(vOff), isa.V(vTID), isa.Imm(4)) // block byte offset
	b.I(isa.OpVAdd, isa.V(3), isa.V(vOff), isa.S(8))
	for i := 0; i < 4; i++ {
		b.Load(isa.OpVLoad, isa.V(vS+i), isa.V(3), int32(4*i))
	}
	b.Waitcnt(0)
	b.I(isa.OpSMov, isa.S(sRK), isa.S(10))
	// Initial whitening.
	for i := 0; i < 4; i++ {
		b.Load(isa.OpSLoad, isa.S(sW), isa.S(sRK), int32(4*i))
		b.I(isa.OpVXor, isa.V(vS+i), isa.V(vS+i), isa.S(sW))
	}
	// lookup emits: vDst ^= table[byte(vSrc >> shift)], where table entries
	// are uint32. first selects mov instead of xor.
	lookup := func(dst, src int, shift int32, tableS int, first bool) {
		if shift == 24 {
			b.I(isa.OpVLShr, isa.V(vTmp), isa.V(src), isa.Imm(24))
		} else if shift == 0 {
			b.I(isa.OpVAnd, isa.V(vTmp), isa.V(src), isa.Imm(0xff))
		} else {
			b.I(isa.OpVLShr, isa.V(vTmp), isa.V(src), isa.Imm(shift))
			b.I(isa.OpVAnd, isa.V(vTmp), isa.V(vTmp), isa.Imm(0xff))
		}
		b.I(isa.OpVLShl, isa.V(vTmp), isa.V(vTmp), isa.Imm(2))
		b.I(isa.OpVAdd, isa.V(vTmp), isa.V(vTmp), isa.S(tableS))
		b.Load(isa.OpVLoad, isa.V(vTmp2), isa.V(vTmp), 0)
		b.Waitcnt(0)
		if first {
			b.I(isa.OpVMov, isa.V(dst), isa.V(vTmp2))
		} else {
			b.I(isa.OpVXor, isa.V(dst), isa.V(dst), isa.V(vTmp2))
		}
	}
	// 13 main rounds.
	for r := 1; r < 14; r++ {
		b.I(isa.OpSAdd, isa.S(sRK), isa.S(sRK), isa.Imm(16))
		for i := 0; i < 4; i++ {
			lookup(vT+i, vS+i, 24, 11, true)
			lookup(vT+i, vS+(i+1)%4, 16, 12, false)
			lookup(vT+i, vS+(i+2)%4, 8, 13, false)
			lookup(vT+i, vS+(i+3)%4, 0, 14, false)
			b.Load(isa.OpSLoad, isa.S(sW), isa.S(sRK), int32(4*i))
			b.I(isa.OpVXor, isa.V(vT+i), isa.V(vT+i), isa.S(sW))
		}
		for i := 0; i < 4; i++ {
			b.I(isa.OpVMov, isa.V(vS+i), isa.V(vT+i))
		}
	}
	// Final round: S-box only, bytes reassembled by shifts.
	b.I(isa.OpSAdd, isa.S(sRK), isa.S(sRK), isa.Imm(16))
	sboxByte := func(dst, src int, shift int32, outShift int32, first bool) {
		lookup(vTmp2, src, shift, 15, true) // vTmp2 = sbox[byte]
		if outShift > 0 {
			b.I(isa.OpVLShl, isa.V(vTmp2), isa.V(vTmp2), isa.Imm(outShift))
		}
		if first {
			b.I(isa.OpVMov, isa.V(dst), isa.V(vTmp2))
		} else {
			b.I(isa.OpVOr, isa.V(dst), isa.V(dst), isa.V(vTmp2))
		}
	}
	for i := 0; i < 4; i++ {
		sboxByte(vT+i, vS+i, 24, 24, true)
		sboxByte(vT+i, vS+(i+1)%4, 16, 16, false)
		sboxByte(vT+i, vS+(i+2)%4, 8, 8, false)
		sboxByte(vT+i, vS+(i+3)%4, 0, 0, false)
		b.Load(isa.OpSLoad, isa.S(sW), isa.S(sRK), int32(4*i))
		b.I(isa.OpVXor, isa.V(vT+i), isa.V(vT+i), isa.S(sW))
	}
	// Store ciphertext.
	b.I(isa.OpVAdd, isa.V(3), isa.V(vOff), isa.S(9))
	for i := 0; i < 4; i++ {
		b.Store(isa.OpVStore, isa.V(3), isa.V(vT+i), int32(4*i))
	}
	emitEpilogue(b, 0, "done")
	return b.MustBuild()
}

// BuildAES constructs the AES-256 benchmark (Hetero-Mark) at the given
// problem size in warps; each thread encrypts one block.
func BuildAES(warps int) (*App, error) {
	if warps <= 0 {
		return nil, fmt.Errorf("aes: warps must be positive")
	}
	m := mem.NewFlat()
	nBlocks := warps * kernel.WavefrontSize
	in := m.Alloc(uint64(16 * nBlocks))
	out := m.Alloc(uint64(16 * nBlocks))

	var key [32]byte
	rng := newRNG(0xae5)
	for i := range key {
		key[i] = byte(rng.next())
	}
	rk := aesExpandKey256(key)
	rkBuf := m.Alloc(4 * 60)
	m.WriteWords(rkBuf, rk[:])

	te, sboxW := aesTables()
	var teBuf [4]uint64
	for i := range te {
		teBuf[i] = m.Alloc(4 * 256)
		m.WriteWords(teBuf[i], te[i][:])
	}
	sboxBuf := m.Alloc(4 * 256)
	m.WriteWords(sboxBuf, sboxW[:])

	hostIn := make([]uint32, 4*nBlocks)
	for i := range hostIn {
		hostIn[i] = uint32(rng.next())
	}
	m.WriteWords(in, hostIn)

	l := &kernel.Launch{
		Name:          "aes",
		Program:       aesProgram(),
		Memory:        m,
		NumWorkgroups: warps,
		WarpsPerGroup: 1,
		Args: []uint32{
			uint32(in), uint32(out), uint32(rkBuf),
			uint32(teBuf[0]), uint32(teBuf[1]), uint32(teBuf[2]), uint32(teBuf[3]),
			uint32(sboxBuf), uint32(nBlocks),
		},
	}
	app := &App{Name: "AES", Mem: m, Launches: []*kernel.Launch{l}}
	app.Check = func() error {
		for blk := 0; blk < nBlocks; blk += max(1, nBlocks/97) {
			var pt [4]uint32
			copy(pt[:], hostIn[4*blk:])
			want := aesEncryptBlockRef(rk, pt)
			for i := 0; i < 4; i++ {
				got := m.Read32(out + uint64(16*blk+4*i))
				if got != want[i] {
					return fmt.Errorf("aes: block %d word %d = %#x, want %#x", blk, i, got, want[i])
				}
			}
		}
		return nil
	}
	return app, nil
}
