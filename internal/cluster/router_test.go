package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"photon/internal/obs"
	"photon/internal/serve"
)

// stubOutput is what every test worker's executor returns: deterministic,
// derived from the request, so byte-identity across nodes and across the
// router is checkable.
func stubOutput(req serve.JobRequest) serve.Output {
	return serve.Output{
		Text:  fmt.Sprintf("bench=%s size=%d quick=%v\n", req.Bench, req.Size, req.Quick),
		JSONL: fmt.Sprintf(`{"bench":%q}`+"\n", req.Bench),
	}
}

type worker struct {
	name  string
	srv   *httptest.Server
	sched *serve.Scheduler
	reg   *obs.Registry
}

func newWorker(t *testing.T, name string, casDir string) *worker {
	t.Helper()
	reg := obs.NewRegistry()
	var store *serve.CAS
	if casDir != "" {
		var err error
		store, err = serve.OpenCAS(casDir, 0, reg, nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	sched := serve.NewScheduler(serve.Config{
		Metrics: reg,
		Store:   store,
		Executor: func(ctx context.Context, req serve.JobRequest, h serve.Hooks) (serve.Output, error) {
			return stubOutput(req), nil
		},
	})
	srv := httptest.NewServer(serve.NewServer(sched, reg).Handler())
	t.Cleanup(srv.Close)
	return &worker{name: name, srv: srv, sched: sched, reg: reg}
}

func newTestRouter(t *testing.T, workers ...*worker) (*Router, *httptest.Server, *obs.Registry) {
	t.Helper()
	nodes := make(map[string]string, len(workers))
	for _, w := range workers {
		nodes[w.name] = w.srv.URL
	}
	reg := obs.NewRegistry()
	rt, err := NewRouter(Config{Nodes: nodes, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(rt.Handler())
	t.Cleanup(srv.Close)
	rt.probeAll(context.Background())
	return rt, srv, reg
}

func submitVia(t *testing.T, base string, req serve.JobRequest) (serve.JobStatus, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 300 {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, data)
	}
	var st serve.JobStatus
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("submit response: %v (%s)", err, data)
	}
	return st, resp.StatusCode
}

func waitDone(t *testing.T, base, id string) serve.JobResult {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			var res serve.JobResult
			if err := json.Unmarshal(data, &res); err != nil {
				t.Fatalf("result: %v (%s)", err, data)
			}
			return res
		}
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("result: HTTP %d: %s", resp.StatusCode, data)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return serve.JobResult{}
}

// TestRouterRoutesByHashAndRewritesIDs: a submission through the router
// lands on the ring owner of its content hash, gets a router-scope id, and
// the status/result endpoints answer under that id with node attribution.
func TestRouterRoutesByHashAndRewritesIDs(t *testing.T) {
	w0 := newWorker(t, "node0", "")
	w1 := newWorker(t, "node1", "")
	rt, srv, _ := newTestRouter(t, w0, w1)

	req := serve.JobRequest{Bench: "mm"}
	canonical, err := serve.Canonicalize(req)
	if err != nil {
		t.Fatal(err)
	}
	wantNode := rt.ring.Owner(serve.Hash(canonical))

	st, code := submitVia(t, srv.URL, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit code = %d, want 202", code)
	}
	if !strings.HasPrefix(st.ID, "r") {
		t.Fatalf("router id = %q, want r-prefixed", st.ID)
	}
	if st.Node != wantNode {
		t.Fatalf("routed to %s, ring owner is %s", st.Node, wantNode)
	}
	res := waitDone(t, srv.URL, st.ID)
	if res.ID != st.ID || res.Node != wantNode {
		t.Fatalf("result identity = (%s, %s), want (%s, %s)", res.ID, res.Node, st.ID, wantNode)
	}
	if want := stubOutput(canonical); res.Output != want.Text {
		t.Fatalf("output through router = %q, want %q", res.Output, want.Text)
	}
}

// TestRouterByteIdenticalToDirect: the artifact served through the router
// is byte-identical to the same request submitted directly to a worker —
// the cluster invariant.
func TestRouterByteIdenticalToDirect(t *testing.T) {
	w0 := newWorker(t, "node0", "")
	w1 := newWorker(t, "node1", "")
	_, srv, _ := newTestRouter(t, w0, w1)

	req := serve.JobRequest{Bench: "spmv"}
	st, _ := submitVia(t, srv.URL, req)
	viaRouter := waitDone(t, srv.URL, st.ID)

	solo := newWorker(t, "solo", "")
	dst, _ := submitVia(t, solo.srv.URL, req)
	direct := waitDone(t, solo.srv.URL, dst.ID)

	if viaRouter.Output != direct.Output || viaRouter.JSONL != direct.JSONL {
		t.Fatalf("router output diverged from direct:\nrouter: %q %q\ndirect: %q %q",
			viaRouter.Output, viaRouter.JSONL, direct.Output, direct.JSONL)
	}
}

// TestRouterFederatedCacheHit: resubmitting a completed request through the
// router is answered by the owner's cache — the federated probe fires, the
// submission reports cache_hit, and cluster_federated_hits counts it.
func TestRouterFederatedCacheHit(t *testing.T) {
	w0 := newWorker(t, "node0", t.TempDir())
	w1 := newWorker(t, "node1", t.TempDir())
	_, srv, reg := newTestRouter(t, w0, w1)

	req := serve.JobRequest{Bench: "mm"}
	st, _ := submitVia(t, srv.URL, req)
	waitDone(t, srv.URL, st.ID)

	st2, code := submitVia(t, srv.URL, req)
	if code != http.StatusOK || !st2.CacheHit {
		t.Fatalf("resubmit = %d %+v, want 200 cache hit", code, st2)
	}
	if st2.Node != st.Node {
		t.Fatalf("cache hit routed to %s, original ran on %s", st2.Node, st.Node)
	}
	if got := reg.Snapshot().SumCounters("cluster_federated_hits"); got < 1 {
		t.Fatalf("cluster_federated_hits = %v, want >= 1", got)
	}
}

// TestRouterFailover: when the hash owner dies, a submission reroutes to
// the survivor, the flip and reroute are visible in cluster_* metrics, and
// the cluster keeps serving end to end.
func TestRouterFailover(t *testing.T) {
	w0 := newWorker(t, "node0", "")
	w1 := newWorker(t, "node1", "")
	rt, srv, reg := newTestRouter(t, w0, w1)

	// Find a request owned by each node so we can kill a known owner.
	victim, survivor := w0, w1
	req := serve.JobRequest{Bench: "mm"}
	canonical, _ := serve.Canonicalize(req)
	if rt.ring.Owner(serve.Hash(canonical)) == "node1" {
		victim, survivor = w1, w0
	}
	victim.srv.Close() // SIGKILL equivalent: connections refused from now on

	st, code := submitVia(t, srv.URL, req)
	if code != http.StatusAccepted {
		t.Fatalf("failover submit = %d, want 202", code)
	}
	if st.Node != survivor.name {
		t.Fatalf("failover routed to %s, want survivor %s", st.Node, survivor.name)
	}
	res := waitDone(t, srv.URL, st.ID)
	if want := stubOutput(canonical); res.Output != want.Text {
		t.Fatalf("failover output = %q, want %q", res.Output, want.Text)
	}
	snap := reg.Snapshot()
	if got := snap.SumCounters("cluster_reroutes"); got < 1 {
		t.Fatalf("cluster_reroutes = %v, want >= 1", got)
	}
	if got := snap.SumCounters("cluster_node_health_flips", obs.L("node", victim.name)); got < 1 {
		t.Fatalf("no health flip recorded for dead node %s", victim.name)
	}
	// readyz stays 200: one survivor still serves.
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz with one survivor = %d, want 200", resp.StatusCode)
	}
}

// TestRouterStealTarget covers the work-stealing decision table without the
// flakiness of racing real queues: saturation and margin both gate a steal.
func TestRouterStealTarget(t *testing.T) {
	reg := obs.NewRegistry()
	rt, err := NewRouter(Config{
		Nodes:   map[string]string{"a": "http://127.0.0.1:1", "b": "http://127.0.0.1:2"},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := rt.nodes["a"], rt.nodes["b"]
	set := func(n *node, load serve.Load) {
		n.mu.Lock()
		n.load = load
		n.mu.Unlock()
	}
	prefs := []*node{a, b}

	// Owner idle: never steal.
	set(a, serve.Load{Workers: 1})
	set(b, serve.Load{Workers: 1})
	if got := rt.stealTarget(a, prefs); got != nil {
		t.Fatalf("stole from an idle owner: %v", got.name)
	}
	// Owner saturated but within margin: keep.
	set(a, serve.Load{QueueDepth: 1, InFlight: 1, Workers: 1, Saturated: true})
	if got := rt.stealTarget(a, prefs); got != nil {
		t.Fatalf("stole within margin: %v", got.name)
	}
	// Owner saturated and deep: steal to the idle node.
	set(a, serve.Load{QueueDepth: 5, InFlight: 1, Workers: 1, Saturated: true})
	if got := rt.stealTarget(a, prefs); got != b {
		t.Fatal("deep saturated queue did not trigger a steal")
	}
	// Both deep: no point moving.
	set(b, serve.Load{QueueDepth: 5, InFlight: 1, Workers: 1, Saturated: true})
	if got := rt.stealTarget(a, prefs); got != nil {
		t.Fatalf("stole to an equally deep node: %v", got.name)
	}
}

// TestRouterSSEStreamAndResume: the SSE stream proxies through the router
// with id: fields intact, and a reconnect with Last-Event-ID replays only
// the tail — the photon-ctl watch resume path, cluster edition.
func TestRouterSSEStreamAndResume(t *testing.T) {
	w0 := newWorker(t, "node0", "")
	w1 := newWorker(t, "node1", "")
	_, srv, _ := newTestRouter(t, w0, w1)

	st, _ := submitVia(t, srv.URL, serve.JobRequest{Bench: "mm"})
	waitDone(t, srv.URL, st.ID)

	ids, events := readSSE(t, srv.URL, st.ID, 0)
	if len(events) < 2 || events[len(events)-1] != "result" {
		t.Fatalf("full stream = %v, want lifecycle ending in result", events)
	}
	for i, id := range ids {
		if id != uint64(i)+1 {
			t.Fatalf("ids = %v, want 1..n", ids)
		}
	}
	// Resume after the penultimate event: exactly the terminal one replays.
	resumeIDs, resumeEvents := readSSE(t, srv.URL, st.ID, ids[len(ids)-2])
	if len(resumeEvents) != 1 || resumeEvents[0] != "result" {
		t.Fatalf("resume replayed %v, want just the result event", resumeEvents)
	}
	if resumeIDs[0] != ids[len(ids)-1] {
		t.Fatalf("resume id = %d, want %d", resumeIDs[0], ids[len(ids)-1])
	}
}

// readSSE reads a finished job's event stream via the router, returning the
// id: values and event: types in order.
func readSSE(t *testing.T, base, id string, lastEventID uint64) ([]uint64, []string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID > 0 {
		req.Header.Set("Last-Event-ID", fmt.Sprint(lastEventID))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: HTTP %d", resp.StatusCode)
	}
	var (
		ids    []uint64
		events []string
	)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if v, ok := strings.CutPrefix(line, "id: "); ok {
			var id uint64
			fmt.Sscanf(v, "%d", &id)
			ids = append(ids, id)
		}
		if v, ok := strings.CutPrefix(line, "event: "); ok {
			events = append(events, v)
		}
	}
	return ids, events
}

// TestRouterMetricsFederation: one scrape of the router yields every node's
// serve_* metrics under node labels plus the router's cluster_* metrics,
// in JSON and in Prometheus text.
func TestRouterMetricsFederation(t *testing.T) {
	w0 := newWorker(t, "node0", "")
	w1 := newWorker(t, "node1", "")
	_, srv, _ := newTestRouter(t, w0, w1)

	st, _ := submitVia(t, srv.URL, serve.JobRequest{Bench: "mm"})
	waitDone(t, srv.URL, st.ID)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if got := snap.SumCounters("cluster_jobs_routed"); got != 1 {
		t.Fatalf("cluster_jobs_routed = %v, want 1", got)
	}
	for _, nodeName := range []string{"node0", "node1"} {
		found := false
		for _, c := range snap.Counters {
			if c.Name == "serve_jobs_submitted" && c.Labels["node"] == nodeName {
				found = true
			}
		}
		if !found {
			t.Fatalf("federated snapshot missing serve_jobs_submitted for %s", nodeName)
		}
	}

	preq, _ := http.NewRequest(http.MethodGet, srv.URL+"/metrics", nil)
	preq.Header.Set("Accept", "text/plain")
	presp, err := http.DefaultClient.Do(preq)
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	prom, _ := io.ReadAll(presp.Body)
	if !strings.Contains(string(prom), "cluster_jobs_routed") ||
		!strings.Contains(string(prom), `node="node`) {
		t.Fatalf("prom exposition missing cluster metrics or node labels:\n%s", prom)
	}
}

// TestRouterListAggregates: GET /v1/jobs through the router shows jobs from
// every node under router ids.
func TestRouterListAggregates(t *testing.T) {
	w0 := newWorker(t, "node0", "")
	w1 := newWorker(t, "node1", "")
	_, srv, _ := newTestRouter(t, w0, w1)

	ids := map[string]bool{}
	for _, req := range []serve.JobRequest{{Bench: "mm"}, {Bench: "spmv"}, {Bench: "hist"}} {
		st, _ := submitVia(t, srv.URL, req)
		waitDone(t, srv.URL, st.ID)
		ids[st.ID] = true
	}
	resp, err := http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var all []serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&all); err != nil {
		t.Fatal(err)
	}
	for _, st := range all {
		if ids[st.ID] {
			delete(ids, st.ID)
			if st.Node == "" {
				t.Fatalf("aggregated job %s missing node attribution", st.ID)
			}
		}
	}
	if len(ids) != 0 {
		t.Fatalf("aggregated list missing router jobs: %v", ids)
	}
}

// TestRouterUnknownJob: ids the router never issued are a clean 404.
func TestRouterUnknownJob(t *testing.T) {
	w0 := newWorker(t, "node0", "")
	_, srv, _ := newTestRouter(t, w0)
	resp, err := http.Get(srv.URL + "/v1/jobs/r999999")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", resp.StatusCode)
	}
}
