package event

import "container/heap"

// RefEngine is the original container/heap implementation of the engine,
// retained as the reference for differential determinism tests and as the
// baseline the event-engine microbenchmarks compare against. It fires
// events in exactly the same (at, seq) order as Engine but pays interface
// boxing and an allocation on every Schedule.
type RefEngine struct {
	now    Time
	seq    uint64
	queue  refHeap
	events uint64
	lastAt Time
}

type refHeap []item

func (h refHeap) Len() int { return len(h) }

func (h refHeap) Less(i, j int) bool { return h[i].less(h[j]) }

func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *refHeap) Push(x any) { *h = append(*h, x.(item)) }

func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// NewRef returns a ready-to-run reference engine with the clock at zero.
func NewRef() *RefEngine { return &RefEngine{} }

// Now returns the current virtual time.
func (e *RefEngine) Now() Time { return e.now }

// Pending reports how many events are waiting to fire.
func (e *RefEngine) Pending() int { return len(e.queue) }

// Processed returns the total number of events executed so far.
func (e *RefEngine) Processed() uint64 { return e.events }

// Schedule registers handler to run at time at, clamping past times to now.
func (e *RefEngine) Schedule(at Time, handler Handler) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.queue, item{at: at, seq: e.seq, handler: handler})
}

// After registers handler to run delay cycles from now.
func (e *RefEngine) After(delay Time, handler Handler) {
	e.Schedule(e.now+delay, handler)
}

// NextAt returns the timestamp of the earliest pending event, if any.
func (e *RefEngine) NextAt() (Time, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].at, true
}

// AdvanceTo moves the clock forward to t without firing anything, with the
// same semantics as Engine.AdvanceTo.
func (e *RefEngine) AdvanceTo(t Time) {
	if t <= e.now {
		return
	}
	if len(e.queue) > 0 && e.queue[0].at < t {
		panic("event: AdvanceTo would skip past a pending event")
	}
	e.now = t
}

// LastAt returns the timestamp of the most recently fired event.
func (e *RefEngine) LastAt() Time { return e.lastAt }

// Run executes events until the queue drains, then returns the final time.
func (e *RefEngine) Run() Time {
	for len(e.queue) > 0 {
		it := heap.Pop(&e.queue).(item)
		e.now = it.at
		e.lastAt = it.at
		e.events++
		it.handler(e.now)
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline, with the same
// boundary semantics as Engine.RunUntil.
func (e *RefEngine) RunUntil(deadline Time) bool {
	for len(e.queue) > 0 {
		if e.queue[0].at > deadline {
			e.now = deadline
			return false
		}
		it := heap.Pop(&e.queue).(item)
		e.now = it.at
		e.lastAt = it.at
		e.events++
		it.handler(e.now)
	}
	return true
}

// Step executes exactly one event if any is pending.
func (e *RefEngine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	it := heap.Pop(&e.queue).(item)
	e.now = it.at
	e.lastAt = it.at
	e.events++
	it.handler(e.now)
	return true
}
