// Command photon-viz renders experiment results as SVG charts: per
// experiment it produces a sampling-error bar chart and a speedup bar chart
// from photon-bench's JSON-lines output, the graphical equivalent of the
// paper's evaluation panels.
//
//	photon-bench -exp fig13 -json fig13.jsonl
//	photon-viz -json fig13.jsonl -out charts/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"photon/internal/buildinfo"
	"photon/internal/harness"
	"photon/internal/obs"
	"photon/internal/viz"
)

func main() {
	var (
		jsonPath   = flag.String("json", "", "JSON-lines results from photon-bench -json")
		outDir     = flag.String("out", ".", "directory for the SVG files")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		version    = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Print("photon-viz"))
		return
	}
	if *jsonPath == "" {
		fmt.Fprintln(os.Stderr, "usage: photon-viz -json results.jsonl [-out dir]")
		os.Exit(2)
	}
	stopProfiles, err := obs.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintf(os.Stderr, "photon-viz: profiles: %v\n", err)
		}
	}()
	f, err := os.Open(*jsonPath)
	if err != nil {
		fatal(err)
	}
	recs, err := harness.ReadRecords(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}

	byExp := map[string][]harness.Record{}
	for _, r := range recs {
		byExp[r.Experiment] = append(byExp[r.Experiment], r)
	}
	exps := make([]string, 0, len(byExp))
	for e := range byExp {
		exps = append(exps, e)
	}
	sort.Strings(exps)
	for _, exp := range exps {
		if err := renderExperiment(*outDir, exp, byExp[exp]); err != nil {
			fatal(err)
		}
	}
}

// renderExperiment writes <exp>_error.svg and <exp>_speedup.svg.
func renderExperiment(dir, exp string, recs []harness.Record) error {
	runners := []string{}
	seenRunner := map[string]bool{}
	type gkey struct {
		bench string
		size  int
	}
	groupOrder := []gkey{}
	seenGroup := map[gkey]bool{}
	vals := map[gkey]map[string]harness.Record{}
	for _, r := range recs {
		if r.Runner == "full" {
			continue
		}
		if !seenRunner[r.Runner] {
			seenRunner[r.Runner] = true
			runners = append(runners, r.Runner)
		}
		k := gkey{r.Bench, r.Size}
		if !seenGroup[k] {
			seenGroup[k] = true
			groupOrder = append(groupOrder, k)
		}
		if vals[k] == nil {
			vals[k] = map[string]harness.Record{}
		}
		vals[k][r.Runner] = r
	}
	build := func(metric func(harness.Record) float64) []viz.BarGroup {
		var groups []viz.BarGroup
		for _, k := range groupOrder {
			label := k.bench
			if k.size > 0 {
				label = fmt.Sprintf("%s/%dK", k.bench, k.size/1024)
			}
			g := viz.BarGroup{Label: label}
			for _, runner := range runners {
				g.Values = append(g.Values, metric(vals[k][runner]))
			}
			groups = append(groups, g)
		}
		return groups
	}
	errSVG := viz.BarChart(exp+": sampling error", "err%", runners,
		build(func(r harness.Record) float64 { return r.ErrPct }))
	spdSVG := viz.BarChart(exp+": wall-time speedup", "speedup (x)", runners,
		build(func(r harness.Record) float64 { return r.Speedup }))
	if err := os.WriteFile(filepath.Join(dir, exp+"_error.svg"), []byte(errSVG), 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, exp+"_speedup.svg"), []byte(spdSVG), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s_error.svg and %s_speedup.svg (%d groups, %d runners)\n",
		exp, exp, len(groupOrder), len(runners))
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "photon-viz: %v\n", err)
	os.Exit(1)
}
