package obs

import (
	"context"
	"io"
	"log/slog"
	"sync/atomic"
	"time"
)

// Structured logging: a thin, nil-safe wrapper over log/slog shared by every
// long-lived component (photon-serve, the harness engine, the Photon
// controller, the timing machine). A nil *Logger is the "logging off"
// logger — every method is a no-op and, called without attrs (or behind an
// Enabled guard), touches neither the allocator nor the handler, so
// instrumented hot paths cost a nil check when logging is disabled.
//
// Call sites that build attrs must guard with Enabled, exactly like slog
// itself recommends: the variadic attr slice is materialized by the caller,
// so only the guard keeps a disabled level allocation-free.

// Logger routes records to a slog.Handler. Levels live in the handler(s):
// a Fanout of a text handler at Info and a hub handler at Debug gives each
// sink its own threshold, and Enabled reports true when any sink wants the
// record.
type Logger struct {
	h slog.Handler

	// Rate limiting (shared by With/Hook descendants created after
	// WithRateLimit): at most max records per window; excess is counted,
	// not delivered.
	rl *rateLimiter
}

type rateLimiter struct {
	max         int64
	window      int64        // ns
	windowStart atomic.Int64 // unix ns of the current window's start
	count       atomic.Int64
	suppressed  atomic.Uint64
}

// allow reports whether one more record fits the current window.
func (r *rateLimiter) allow(now int64) bool {
	start := r.windowStart.Load()
	if now-start >= r.window {
		// Roll the window. Only one racer wins the CAS; losers simply count
		// against the fresh window, which is the behavior we want anyway.
		if r.windowStart.CompareAndSwap(start, now) {
			r.count.Store(0)
		}
	}
	if r.count.Add(1) > r.max {
		r.suppressed.Add(1)
		return false
	}
	return true
}

// NewLogger wraps a slog.Handler. Pass nil to get the no-op logger.
func NewLogger(h slog.Handler) *Logger {
	if h == nil {
		return nil
	}
	return &Logger{h: h}
}

// NewTextLogger returns a logger writing logfmt-style text records to w at
// the given minimum level.
func NewTextLogger(w io.Writer, level slog.Leveler) *Logger {
	return NewLogger(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// NewJSONLogger returns a logger writing JSON records to w at the given
// minimum level.
func NewJSONLogger(w io.Writer, level slog.Leveler) *Logger {
	return NewLogger(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// ParseLevel resolves the CLI spellings of a log level; unknown strings
// fall back to Info.
func ParseLevel(s string) slog.Level {
	switch s {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// Handler exposes the logger's underlying slog.Handler (nil for the no-op
// logger), so callers can compose it into a Fanout with sinks of their own —
// photon-serve fans a job's records out to the daemon handler and the job's
// SSE hub at independent levels.
func (l *Logger) Handler() slog.Handler {
	if l == nil {
		return nil
	}
	return l.h
}

// Enabled reports whether a record at level would be delivered to at least
// one sink. Guard attr-building call sites with it; a nil logger reports
// false for every level.
func (l *Logger) Enabled(level slog.Level) bool {
	return l != nil && l.h.Enabled(context.Background(), level)
}

// With returns a logger whose records all carry attrs (the scope context:
// job hash, worker id, kernel index). A nil receiver stays nil.
func (l *Logger) With(attrs ...slog.Attr) *Logger {
	if l == nil || len(attrs) == 0 {
		return l
	}
	return &Logger{h: l.h.WithAttrs(attrs), rl: l.rl}
}

// WithRateLimit caps the logger (and loggers later derived from it) at max
// records per window; excess records are dropped and counted. It protects
// slow sinks — an SSE hub, a piped stderr — from per-kernel event floods.
func (l *Logger) WithRateLimit(max int, window time.Duration) *Logger {
	if l == nil || max <= 0 || window <= 0 {
		return l
	}
	return &Logger{h: l.h, rl: &rateLimiter{max: int64(max), window: int64(window)}}
}

// Suppressed returns how many records the rate limit dropped.
func (l *Logger) Suppressed() uint64 {
	if l == nil || l.rl == nil {
		return 0
	}
	return l.rl.suppressed.Load()
}

// Log delivers one record. Attrs are evaluated by the caller, so guard
// non-trivial sites with Enabled.
func (l *Logger) Log(level slog.Level, msg string, attrs ...slog.Attr) {
	if l == nil || !l.h.Enabled(context.Background(), level) {
		return
	}
	now := time.Now()
	if l.rl != nil && !l.rl.allow(now.UnixNano()) {
		return
	}
	r := slog.NewRecord(now, level, msg, 0)
	r.AddAttrs(attrs...)
	_ = l.h.Handle(context.Background(), r)
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, attrs ...slog.Attr) { l.Log(slog.LevelDebug, msg, attrs...) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, attrs ...slog.Attr) { l.Log(slog.LevelInfo, msg, attrs...) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, attrs ...slog.Attr) { l.Log(slog.LevelWarn, msg, attrs...) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, attrs ...slog.Attr) { l.Log(slog.LevelError, msg, attrs...) }

// Hook returns a logger that additionally invokes fn for every record the
// base delivers (after level filtering and rate limiting). photon-serve
// uses it to tee job-scoped records into the job's SSE hub while stderr
// keeps receiving them.
func (l *Logger) Hook(fn func(slog.Record)) *Logger {
	if l == nil || fn == nil {
		return l
	}
	return &Logger{h: hookHandler{next: l.h, fn: fn}, rl: l.rl}
}

// hookHandler forwards to next and calls fn per record.
type hookHandler struct {
	next slog.Handler
	fn   func(slog.Record)
}

func (h hookHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.next.Enabled(ctx, level)
}

func (h hookHandler) Handle(ctx context.Context, r slog.Record) error {
	h.fn(r)
	return h.next.Handle(ctx, r)
}

func (h hookHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return hookHandler{next: h.next.WithAttrs(attrs), fn: h.fn}
}

func (h hookHandler) WithGroup(name string) slog.Handler {
	return hookHandler{next: h.next.WithGroup(name), fn: h.fn}
}

// Fanout combines handlers into one: Enabled when any is, Handle delivers
// to each handler that wants the record's level. It is how one Logger
// serves sinks with different thresholds (stderr at Info, an SSE hub at
// Debug).
func Fanout(handlers ...slog.Handler) slog.Handler {
	hs := make([]slog.Handler, 0, len(handlers))
	for _, h := range handlers {
		if h != nil {
			hs = append(hs, h)
		}
	}
	return fanoutHandler(hs)
}

type fanoutHandler []slog.Handler

func (f fanoutHandler) Enabled(ctx context.Context, level slog.Level) bool {
	for _, h := range f {
		if h.Enabled(ctx, level) {
			return true
		}
	}
	return false
}

func (f fanoutHandler) Handle(ctx context.Context, r slog.Record) error {
	var first error
	for _, h := range f {
		if !h.Enabled(ctx, r.Level) {
			continue
		}
		if err := h.Handle(ctx, r.Clone()); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (f fanoutHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	out := make(fanoutHandler, len(f))
	for i, h := range f {
		out[i] = h.WithAttrs(attrs)
	}
	return out
}

func (f fanoutHandler) WithGroup(name string) slog.Handler {
	out := make(fanoutHandler, len(f))
	for i, h := range f {
		out[i] = h.WithGroup(name)
	}
	return out
}
