package verify

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func forEachRegressionCase(t *testing.T, check func(*testing.T, *Case)) {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", "*.case"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no committed regression cases found under testdata/")
	}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			text, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			c, err := ParseCase(string(text))
			if err != nil {
				t.Fatal(err)
			}
			check(t, c)
		})
	}
}

func checkLaneCase(t *testing.T, c *Case) {
	t.Helper()
	vs := RunLaneCase(c)
	if len(vs) == 0 {
		return
	}
	dis := "<unbuildable>"
	if p, err := c.Program(); err == nil {
		dis = p.Disassemble()
	}
	t.Fatalf("%d violations:\n%s\n%s\nserialized case for testdata/:\n%s",
		len(vs), violationText(vs), dis, c.Format())
}

// TestLanedRandomPrograms is the laned-engine differential sweep: seeded
// random programs, each run on the quantum-laned engine at 1, 2 and 8 lanes
// plus the serial reference, with the lane-count-invariance and
// serial-functional-equivalence battery (registers, masks, BBV weights,
// memory images, conservation counters). Each case costs four timing runs,
// so the sweep is smaller than the serial TestRandomPrograms.
func TestLanedRandomPrograms(t *testing.T) {
	n := 120
	if testing.Short() {
		n = 20
	}
	for i := 0; i < n; i++ {
		seed := int64(7_000 + i)
		c := RandomCase(fmt.Sprintf("lane%d", i), seed)
		checkLaneCase(t, c)
	}
}

// TestLanedRegressionCases replays the committed regression corpus through
// the lane battery — any case that once exposed an engine disagreement is
// also a lane-invariance witness.
func TestLanedRegressionCases(t *testing.T) {
	forEachRegressionCase(t, checkLaneCase)
}
