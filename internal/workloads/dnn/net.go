// Package dnn lowers convolutional neural networks (the paper's VGG-16/19
// and ResNet-18/34/50/101/152, batch size 1) to sequences of GPU kernel
// launches over the simulator's ISA: direct convolution (ReLU fused), max
// pooling, fully-connected layers, residual add+ReLU and global average
// pooling.
//
// Substitution note (documented in DESIGN.md): the paper runs 224×224
// inference on the real channel widths. To keep detailed simulation
// tractable we scale the spatial resolution to 64×64 and divide channel
// widths by 4 while keeping every layer, kernel shape, stride and the full
// depth of each network. The cross-kernel repetition structure — which is
// what kernel-sampling exploits — is exactly preserved.
package dnn

import (
	"fmt"

	"photon/internal/sim/isa"
	"photon/internal/sim/kernel"
	"photon/internal/sim/mem"
	"photon/internal/workloads"
)

// Scale controls the model reduction.
type Scale struct {
	// Input is the spatial edge of the (square) input image.
	Input int
	// ChannelDiv divides every layer's channel width.
	ChannelDiv int
}

// DefaultScale is the reduction used by the experiments.
func DefaultScale() Scale { return Scale{Input: 64, ChannelDiv: 4} }

func (s Scale) ch(c int) int {
	v := c / s.ChannelDiv
	if v < 8 {
		v = 8
	}
	return v
}

// Tensor is a NCHW activation buffer with a zero halo of Pad pixels on every
// spatial side; convolutions read the halo instead of bounds-checking.
type Tensor struct {
	Base    uint64
	C, H, W int
	Pad     int
}

func (t Tensor) paddedH() int    { return t.H + 2*t.Pad }
func (t Tensor) paddedW() int    { return t.W + 2*t.Pad }
func (t Tensor) rowStride() int  { return t.paddedW() }
func (t Tensor) chanStride() int { return t.paddedH() * t.paddedW() }
func (t Tensor) words() int      { return t.C * t.chanStride() }

// elemAddr returns the byte address of logical element (c, y, x).
func (t Tensor) elemAddr(c, y, x int) uint64 {
	return t.Base + uint64(4*((c*t.paddedH()+y+t.Pad)*t.paddedW()+x+t.Pad))
}

// Net accumulates layers into a workloads.App.
type Net struct {
	app   *workloads.App
	rng   *splitmix
	progs map[string]*isa.Program
}

type splitmix struct{ s uint64 }

func (r *splitmix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float32 returns a value in [0, 1).
func (r *splitmix) Float32() float32 { return float32(r.next()>>40) / float32(1<<24) }

// Intn returns a value in [0, n).
func (r *splitmix) Intn(n int) int { return int(r.next() % uint64(n)) }

// NewNet creates an empty network named name.
func NewNet(name string, seed uint64) *Net {
	return &Net{
		app:   &workloads.App{Name: name, Mem: mem.NewFlat()},
		rng:   &splitmix{s: seed},
		progs: make(map[string]*isa.Program),
	}
}

// App finalizes and returns the application.
func (n *Net) App() *workloads.App { return n.app }

// Mem returns the network's memory image.
func (n *Net) Mem() *mem.Flat { return n.app.Mem }

// NewTensor allocates a zeroed activation tensor.
func (n *Net) NewTensor(c, h, w, pad int) Tensor {
	t := Tensor{C: c, H: h, W: w, Pad: pad}
	t.Base = n.app.Mem.Alloc(uint64(4 * t.words()))
	return t
}

// Input allocates the network input and fills it with deterministic values.
func (n *Net) Input(c, h, w, pad int) Tensor {
	t := n.NewTensor(c, h, w, pad)
	for ci := 0; ci < c; ci++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				n.app.Mem.WriteF32(t.elemAddr(ci, y, x), n.rng.Float32()*2-1)
			}
		}
	}
	return t
}

// allocWeights fills a weight buffer with small deterministic values.
func (n *Net) allocWeights(words int) uint64 {
	base := n.app.Mem.Alloc(uint64(4 * words))
	for i := 0; i < words; i++ {
		n.app.Mem.WriteF32(base+uint64(4*i), (n.rng.Float32()-0.5)*0.2)
	}
	return base
}

// program returns a cached program, building it on first use; layers with
// identical shapes share one program, which is what makes their kernels
// byte-identical (and their GPU BBVs equal).
func (n *Net) program(key string, build func() *isa.Program) *isa.Program {
	if p, ok := n.progs[key]; ok {
		return p
	}
	p := build()
	n.progs[key] = p
	return p
}

func (n *Net) addLaunch(name string, p *isa.Program, groups, wpg int, args []uint32) {
	n.app.Launches = append(n.app.Launches, &kernel.Launch{
		Name:          name,
		Program:       p,
		Memory:        n.app.Mem,
		NumWorkgroups: groups,
		WarpsPerGroup: wpg,
		Args:          args,
	})
}

func assertPow2(what string, v int) {
	if v <= 0 || v&(v-1) != 0 {
		panic(fmt.Sprintf("dnn: %s = %d must be a power of two", what, v))
	}
}
