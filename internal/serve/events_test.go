package serve

import (
	"fmt"
	"testing"
)

// TestHubSequenceNumbers: publish assigns 1-based, strictly increasing
// sequence numbers, and subscribers see them both in replay and live.
func TestHubSequenceNumbers(t *testing.T) {
	h := newEventHub()
	h.publish(Event{Type: "state", State: StateQueued})
	h.publish(Event{Type: "state", State: StateRunning})

	replay, live, cancel := h.subscribe()
	defer cancel()
	if len(replay) != 2 {
		t.Fatalf("replay len = %d, want 2", len(replay))
	}
	for i, ev := range replay {
		if ev.Seq != uint64(i)+1 {
			t.Fatalf("replay[%d].Seq = %d, want %d", i, ev.Seq, i+1)
		}
	}
	h.publish(Event{Type: "result", State: StateDone})
	if ev := <-live; ev.Seq != 3 {
		t.Fatalf("live event Seq = %d, want 3", ev.Seq)
	}
}

// TestHubSubscribeFromResumes is the Last-Event-ID regression test at the
// hub level: a subscriber resuming after event k gets exactly the events
// k+1..n — no duplicates, no gaps — which is what keeps `photon-ctl watch`
// from double-printing a job's lifecycle after a dropped proxy connection.
func TestHubSubscribeFromResumes(t *testing.T) {
	h := newEventHub()
	const n = 5
	for i := 1; i <= n; i++ {
		h.publish(Event{Type: "log", Msg: fmt.Sprintf("ev-%d", i)})
	}
	for after := uint64(0); after <= n; after++ {
		replay, _, cancel := h.subscribeFrom(after)
		if got, want := len(replay), n-int(after); got != want {
			t.Fatalf("subscribeFrom(%d) replayed %d events, want %d", after, got, want)
		}
		for i, ev := range replay {
			wantSeq := after + uint64(i) + 1
			if ev.Seq != wantSeq {
				t.Fatalf("subscribeFrom(%d) replay[%d].Seq = %d, want %d", after, i, ev.Seq, wantSeq)
			}
			if want := fmt.Sprintf("ev-%d", wantSeq); ev.Msg != want {
				t.Fatalf("subscribeFrom(%d) replay[%d].Msg = %q, want %q", after, i, ev.Msg, want)
			}
		}
		cancel()
	}
}

// TestHubSubscribeFromFutureID: an id beyond anything published (a stale
// client talking to a fresh execution of the same job) clamps to "nothing
// to replay" rather than panicking or replaying from the start.
func TestHubSubscribeFromFutureID(t *testing.T) {
	h := newEventHub()
	h.publish(Event{Type: "state", State: StateQueued})
	replay, live, cancel := h.subscribeFrom(99)
	defer cancel()
	if len(replay) != 0 {
		t.Fatalf("future-id replay len = %d, want 0", len(replay))
	}
	// The subscription is still live: the next publish arrives.
	h.publish(Event{Type: "result", State: StateDone})
	if ev := <-live; ev.Seq != 2 {
		t.Fatalf("live Seq after future-id resume = %d, want 2", ev.Seq)
	}
}

// TestHubResumeAfterClose: resuming against a finished job replays the tail
// (terminal event included) with a nil live channel — the reconnecting
// client prints what it missed and exits cleanly.
func TestHubResumeAfterClose(t *testing.T) {
	h := newEventHub()
	h.publish(Event{Type: "state", State: StateRunning})
	h.publish(Event{Type: "result", State: StateDone})
	h.close()

	replay, live, cancel := h.subscribeFrom(1)
	defer cancel()
	if live != nil {
		t.Fatal("live channel not nil after hub close")
	}
	if len(replay) != 1 || replay[0].Type != "result" || replay[0].Seq != 2 {
		t.Fatalf("post-close resume replay = %+v, want the terminal event only", replay)
	}
}
