package dnn

import (
	"fmt"

	"photon/internal/sim/isa"
	"photon/internal/sim/kernel"
)

// Tiled GEMM over row-major matrices: Y[M×N] = act(X[M×K]·W[K×N] + bias
// (+ residual)). One warp computes a (row, 64-column block) strip; the
// k-loop is register-tiled — gemmKTile taps' scalar X loads and vector W
// loads issue back-to-back with a single s_waitcnt per tile, so the memory
// system sees the whole tile's loads in flight at once. This is the
// workhorse behind the transformer's projections and FFNs.

// gemmKTile is the k-loop unroll factor (taps per tile).
const gemmKTile = 4

// GemmSpec is one GEMM shape; programs are cached on its key so every
// same-shape launch (e.g. the Q/K/V projections of every layer) shares one
// program — the repetition kernel-sampling exploits.
type GemmSpec struct {
	M, K, N  int
	ReLU     bool
	Residual bool
}

func (gs GemmSpec) key() string {
	return fmt.Sprintf("gemm_m%d_k%d_n%d_r%v_res%v", gs.M, gs.K, gs.N, gs.ReLU, gs.Residual)
}

func (gs GemmSpec) colBlocks() int {
	return (gs.N + kernel.WavefrontSize - 1) / kernel.WavefrontSize
}

// warps returns the launch grid size (one warp per row × column block).
func (gs GemmSpec) warps() int { return gs.M * gs.colBlocks() }

// gemmProgram emits the tiled GEMM kernel.
// Args: s8=X, s9=W, s10=Y, s11=bias, s12=residual (when Residual).
func gemmProgram(gs GemmSpec) *isa.Program {
	b := isa.NewBuilder(gs.key())
	blocks := gs.colBlocks()
	// Decode warp -> (row s4, column block s5); col = s5*64 + lane.
	if blocks > 1 {
		b.I(isa.OpSDiv, isa.S(4), isa.S(2), isa.Imm(int32(blocks)))
		b.I(isa.OpSMod, isa.S(5), isa.S(2), isa.Imm(int32(blocks)))
	} else {
		b.I(isa.OpSMov, isa.S(4), isa.S(2))
		b.I(isa.OpSMov, isa.S(5), isa.Imm(0))
	}
	b.I(isa.OpSLShl, isa.S(6), isa.S(5), isa.Imm(6))
	b.I(isa.OpVAdd, isa.V(1), isa.V(0), isa.S(6)) // col
	b.I(isa.OpVCmpLt, isa.Operand{}, isa.V(1), isa.Imm(int32(gs.N)))
	b.I(isa.OpSAndSaveExec, isa.Mask(0))
	b.Br(isa.OpCBranchExecZ, "done")
	b.I(isa.OpVLShl, isa.V(2), isa.V(1), isa.Imm(2)) // col*4
	// X row base: s13 = X + row*K*4 (advanced through the k-loop).
	b.I(isa.OpSMul, isa.S(13), isa.S(4), isa.Imm(int32(4*gs.K)))
	b.I(isa.OpSAdd, isa.S(13), isa.S(13), isa.S(8))
	// W column pointer: v3 = W + col*4 (advanced by tile strides).
	b.I(isa.OpVAdd, isa.V(3), isa.V(2), isa.S(9))
	b.I(isa.OpVMov, isa.V(5), f32imm(0)) // acc
	tile := gemmKTile
	if gs.K%tile != 0 {
		tile = 1
	}
	b.I(isa.OpSMov, isa.S(15), isa.Imm(0)) // k tile counter
	b.Label("k")
	// Issue the whole tile's loads, then drain them with one waitcnt: the
	// scalar X taps land in s20.., the vector W rows in v16.. .
	for t := 0; t < tile; t++ {
		b.Load(isa.OpSLoad, isa.S(20+t), isa.S(13), int32(4*t))
		b.Load(isa.OpVLoad, isa.V(16+t), isa.V(3), int32(4*t*gs.N))
	}
	b.Waitcnt(0)
	for t := 0; t < tile; t++ {
		b.I(isa.OpVFFma, isa.V(5), isa.V(16+t), isa.S(20+t), isa.V(5))
	}
	b.I(isa.OpSAdd, isa.S(13), isa.S(13), isa.Imm(int32(4*tile)))
	b.I(isa.OpVAdd, isa.V(3), isa.V(3), isa.Imm(int32(4*tile*gs.N)))
	b.I(isa.OpSAdd, isa.S(15), isa.S(15), isa.Imm(1))
	b.I(isa.OpSCmpLt, isa.Operand{}, isa.S(15), isa.Imm(int32(gs.K/tile)))
	b.Br(isa.OpCBranchSCC1, "k")
	// + bias[col].
	b.I(isa.OpVAdd, isa.V(6), isa.V(2), isa.S(11))
	b.Load(isa.OpVLoad, isa.V(8), isa.V(6), 0)
	b.Waitcnt(0)
	b.I(isa.OpVFAdd, isa.V(5), isa.V(5), isa.V(8))
	// Row offset in Y (and the residual, which shares Y's shape).
	b.I(isa.OpSMul, isa.S(16), isa.S(4), isa.Imm(int32(4*gs.N)))
	if gs.Residual {
		b.I(isa.OpSAdd, isa.S(17), isa.S(16), isa.S(12))
		b.I(isa.OpVAdd, isa.V(7), isa.V(2), isa.S(17))
		b.Load(isa.OpVLoad, isa.V(9), isa.V(7), 0)
		b.Waitcnt(0)
		b.I(isa.OpVFAdd, isa.V(5), isa.V(5), isa.V(9))
	}
	if gs.ReLU {
		b.I(isa.OpVFMax, isa.V(5), isa.V(5), f32imm(0))
	}
	b.I(isa.OpSAdd, isa.S(16), isa.S(16), isa.S(10))
	b.I(isa.OpVAdd, isa.V(10), isa.V(2), isa.S(16))
	b.Store(isa.OpVStore, isa.V(10), isa.V(5), 0)
	b.Label("done")
	b.I(isa.OpSSetExec, isa.Operand{}, isa.Mask(0))
	b.End()
	return b.MustBuild()
}

// GEMM appends y = act(x·w + bias [+ residual]) with freshly initialized
// weights [x.C × outCols] and bias [outCols]. residual, when non-nil, must
// share y's shape and is added before the activation (fusing the
// transformer's residual connections into the projection that produces
// them).
func (n *Net) GEMM(name string, x Mat, outCols int, relu bool, residual *Mat) Mat {
	gs := GemmSpec{M: x.R, K: x.C, N: outCols, ReLU: relu, Residual: residual != nil}
	y := n.NewMat(x.R, outCols)
	w := n.allocWeights(x.C * outCols)
	bias := n.allocWeights(outCols)
	p := n.program(gs.key(), func() *isa.Program { return gemmProgram(gs) })
	args := []uint32{uint32(x.Base), uint32(w), uint32(y.Base), uint32(bias)}
	if residual != nil {
		if residual.R != y.R || residual.C != y.C {
			panic(fmt.Sprintf("dnn: %s: residual %dx%d does not match output %dx%d",
				name, residual.R, residual.C, y.R, y.C))
		}
		args = append(args, uint32(residual.Base))
	}
	n.addLaunch(name, p, gs.warps(), 1, args)
	return y
}
