package workloads

import (
	"fmt"

	"photon/internal/sim/isa"
	"photon/internal/sim/kernel"
	"photon/internal/sim/mem"
)

// mmTile is the square tile edge; a workgroup of 4 warps (256 threads)
// computes one 16x16 tile of C, staging A and B tiles in LDS between
// barriers — the classic tiled GEMM kernel.
const mmTile = 16

// mmProgram computes C = A*B for N×N float matrices. N is baked in (the
// OpenCL kernel receives it as a compile-time define in the APP SDK too).
// Args: s8=A, s9=B, s10=C.
func mmProgram(n int) *isa.Program {
	ln := log2(n)
	nt := n / mmTile // tiles per edge, power of two
	lnt := log2(nt)
	b := isa.NewBuilder(fmt.Sprintf("mm_%d", n))
	b.SetLDS(2 * mmTile * mmTile * 4) // A tile then B tile

	// Thread coordinates within the 16x16 tile.
	b.I(isa.OpSLShl, isa.S(4), isa.S(1), isa.Imm(6))
	b.I(isa.OpVAdd, isa.V(1), isa.V(0), isa.S(4))          // t = warpInWG*64+lane
	b.I(isa.OpVAnd, isa.V(2), isa.V(1), isa.Imm(mmTile-1)) // tx
	b.I(isa.OpVLShr, isa.V(3), isa.V(1), isa.Imm(4))       // ty
	// Workgroup's tile coordinates.
	b.I(isa.OpSAnd, isa.S(5), isa.S(0), isa.Imm(int32(nt-1))) // bx
	b.I(isa.OpSLShr, isa.S(6), isa.S(0), isa.Imm(int32(lnt))) // by
	b.I(isa.OpSLShl, isa.S(7), isa.S(6), isa.Imm(4))          // by*16
	b.I(isa.OpVAdd, isa.V(4), isa.V(3), isa.S(7))             // row
	b.I(isa.OpSLShl, isa.S(12), isa.S(5), isa.Imm(4))         // bx*16
	b.I(isa.OpVAdd, isa.V(5), isa.V(2), isa.S(12))            // col
	b.I(isa.OpVMov, isa.V(6), f32imm(0))                      // acc
	b.I(isa.OpVLShl, isa.V(11), isa.V(1), isa.Imm(2))         // LDS addr of this thread
	b.I(isa.OpSMov, isa.S(13), isa.Imm(0))                    // tile index

	b.Label("tile")
	// Load A[row][tbase+tx] and B[tbase+ty][col] into LDS.
	b.I(isa.OpSLShl, isa.S(14), isa.S(13), isa.Imm(4)) // tbase = tile*16
	b.I(isa.OpVLShl, isa.V(7), isa.V(4), isa.Imm(int32(ln)))
	b.I(isa.OpVAdd, isa.V(7), isa.V(7), isa.S(14))
	b.I(isa.OpVAdd, isa.V(7), isa.V(7), isa.V(2))
	b.I(isa.OpVLShl, isa.V(7), isa.V(7), isa.Imm(2))
	b.I(isa.OpVAdd, isa.V(7), isa.V(7), isa.S(8))
	b.Load(isa.OpVLoad, isa.V(8), isa.V(7), 0)
	b.I(isa.OpVAdd, isa.V(9), isa.V(3), isa.S(14))
	b.I(isa.OpVLShl, isa.V(9), isa.V(9), isa.Imm(int32(ln)))
	b.I(isa.OpVAdd, isa.V(9), isa.V(9), isa.V(5))
	b.I(isa.OpVLShl, isa.V(9), isa.V(9), isa.Imm(2))
	b.I(isa.OpVAdd, isa.V(9), isa.V(9), isa.S(9))
	b.Load(isa.OpVLoad, isa.V(10), isa.V(9), 0)
	b.Waitcnt(0)
	b.Store(isa.OpLDSStore, isa.V(11), isa.V(8), 0)
	b.Store(isa.OpLDSStore, isa.V(11), isa.V(10), mmTile*mmTile*4)
	b.Barrier()
	// Inner product over the staged tiles, fully unrolled.
	// aAddr = (ty*16 + k)*4, bAddr = (k*16 + tx)*4 + 1024.
	b.I(isa.OpVLShl, isa.V(12), isa.V(3), isa.Imm(6)) // ty*16*4
	b.I(isa.OpVLShl, isa.V(14), isa.V(2), isa.Imm(2)) // tx*4
	for k := 0; k < mmTile; k++ {
		b.Load(isa.OpLDSLoad, isa.V(13), isa.V(12), int32(4*k))
		b.Load(isa.OpLDSLoad, isa.V(15), isa.V(14), int32(mmTile*mmTile*4+4*mmTile*k))
		b.I(isa.OpVFFma, isa.V(6), isa.V(13), isa.V(15), isa.V(6))
	}
	b.Barrier()
	b.I(isa.OpSAdd, isa.S(13), isa.S(13), isa.Imm(1))
	b.I(isa.OpSCmpLt, isa.Operand{}, isa.S(13), isa.Imm(int32(nt)))
	b.Br(isa.OpCBranchSCC1, "tile")

	// C[row][col] = acc.
	b.I(isa.OpVLShl, isa.V(16), isa.V(4), isa.Imm(int32(ln)))
	b.I(isa.OpVAdd, isa.V(16), isa.V(16), isa.V(5))
	b.I(isa.OpVLShl, isa.V(16), isa.V(16), isa.Imm(2))
	b.I(isa.OpVAdd, isa.V(16), isa.V(16), isa.S(10))
	b.Store(isa.OpVStore, isa.V(16), isa.V(6), 0)
	b.End()
	return b.MustBuild()
}

// mmSizeForWarps converts the paper's warp-count problem size to the matrix
// edge N: warps = N*N/64, with N/16 a power of two.
func mmSizeForWarps(warps int) (int, error) {
	for n := 64; n <= 1<<14; n *= 2 {
		if n*n/kernel.WavefrontSize == warps {
			return n, nil
		}
	}
	return 0, fmt.Errorf("mm: no power-of-two matrix edge yields %d warps (use 64, 256, 1024, 4096, ...)", warps)
}

// BuildMM constructs the tiled matrix-multiplication benchmark (AMD APP SDK)
// at the given problem size in warps.
func BuildMM(warps int) (*App, error) {
	n, err := mmSizeForWarps(warps)
	if err != nil {
		return nil, err
	}
	m := mem.NewFlat()
	words := uint64(4 * n * n)
	a := m.Alloc(words)
	bb := m.Alloc(words)
	c := m.Alloc(words)
	rng := newRNG(0x3434)
	hostA := make([]float32, n*n)
	hostB := make([]float32, n*n)
	for i := range hostA {
		hostA[i] = rng.float32n() - 0.5
		hostB[i] = rng.float32n() - 0.5
	}
	m.WriteFloats(a, hostA)
	m.WriteFloats(bb, hostB)

	l := &kernel.Launch{
		Name:          "mm",
		Program:       mmProgram(n),
		Memory:        m,
		NumWorkgroups: (n / mmTile) * (n / mmTile),
		WarpsPerGroup: mmTile * mmTile / kernel.WavefrontSize,
		Args:          []uint32{uint32(a), uint32(bb), uint32(c)},
	}
	app := &App{Name: "MM", Mem: m, Launches: []*kernel.Launch{l}}
	app.Check = func() error {
		// Verify a handful of elements, replaying the kernel's tile-ordered
		// float32 accumulation.
		for _, idx := range []int{0, 1, n - 1, n * n / 2, n*n - 1} {
			row, col := idx/n, idx%n
			var want float32
			for k := 0; k < n; k++ {
				want = hostA[row*n+k]*hostB[k*n+col] + want
			}
			got := m.ReadF32(c + uint64(4*idx))
			if !approxEqual(got, want, 1e-3) {
				return fmt.Errorf("mm: C[%d][%d] = %v, want %v", row, col, got, want)
			}
		}
		return nil
	}
	return app, nil
}

func approxEqual(a, b, tol float32) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := b
	if m < 0 {
		m = -m
	}
	if m < 1 {
		m = 1
	}
	return d <= tol*m
}
