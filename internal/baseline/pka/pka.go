// Package pka reimplements Principal Kernel Analysis (Baddouh et al.,
// MICRO 2021) as the comparison baseline, following the description in the
// Photon paper's evaluation: PKA monitors the GPU's IPC over a trailing
// cycle window and, once the IPC is stable (variance below the threshold
// s = 0.25 over the last 3000 cycles), stops detailed simulation and
// extrapolates the rest of the kernel at the stable IPC. At the kernel
// level, PKA groups kernel invocations by hand-picked features (kernel name
// and instruction-count/warp-count profile) and reuses a group
// representative's time.
package pka

import (
	"fmt"
	"math"
	"time"

	"photon/internal/core"
	"photon/internal/sim/emu"
	"photon/internal/sim/event"
	"photon/internal/sim/gpu"
	"photon/internal/sim/isa"
	"photon/internal/sim/kernel"
	"photon/internal/sim/timing"
)

// Params configures the baseline.
type Params struct {
	// S is the IPC stability threshold (default 0.25). Stability is judged
	// by the squared coefficient of variation of per-bin IPC over the
	// trailing window, a normalized form of the variance test.
	S float64
	// WindowCycles is the trailing window (paper: 3000 cycles).
	WindowCycles event.Time
	// BinCycles is the IPC sampling granularity within the window.
	BinCycles event.Time
	// MinCycles prevents declaring stability during the ramp-up.
	MinCycles event.Time
	// SampleFraction is the functional sample used to estimate total
	// instructions for extrapolation (PKA obtains this from profiling
	// counters; we grant it the same 1% online sample Photon uses).
	SampleFraction float64
}

// DefaultParams matches the paper's PKA configuration.
func DefaultParams() Params {
	return Params{
		S:              0.25,
		WindowCycles:   3000,
		BinCycles:      100,
		MinCycles:      6000,
		SampleFraction: 0.01,
	}
}

// ipcMonitor is a timing.Observer binning instruction issues per BinCycles
// and testing IPC stability over the trailing window.
type ipcMonitor struct {
	timing.NopObserver
	p         Params
	bins      []float64
	evalBin   int
	triggered bool
	stableIPC float64
	trigTime  event.Time
}

func (m *ipcMonitor) OnInstIssued(now event.Time, cuID int, w *emu.Warp, class isa.FUClass, lat event.Time) {
	idx := int(now / m.p.BinCycles)
	for idx >= len(m.bins) {
		m.bins = append(m.bins, 0)
	}
	m.bins[idx]++
	if m.triggered || now < m.p.MinCycles {
		return
	}
	// Evaluate once per completed bin.
	if idx > m.evalBin {
		m.evalBin = idx
		m.evaluate(now)
	}
}

func (m *ipcMonitor) evaluate(now event.Time) {
	nBins := int(m.p.WindowCycles / m.p.BinCycles)
	last := int(now/m.p.BinCycles) - 1 // exclude the partially-filled bin
	if last+1 < nBins {
		return
	}
	var sum, sumSq float64
	for i := last + 1 - nBins; i <= last; i++ {
		v := m.bins[i] / float64(m.p.BinCycles)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(nBins)
	if mean == 0 {
		return
	}
	variance := sumSq/float64(nBins) - mean*mean
	if variance/(mean*mean) < m.p.S {
		m.triggered = true
		m.stableIPC = mean
		m.trigTime = now
	}
}

// kernelKey is PKA's hand-picked kernel-clustering feature set: the kernel
// name plus its warp count and the order of magnitude of its per-warp
// instruction count. (The Photon paper's Observation 5 argues exactly this
// kind of feature counting can mis-cluster.)
type kernelKey struct {
	name       string
	warps      int
	instBucket int
}

type kernelEntry struct {
	simTime event.Time
	insts   uint64
}

// Runner is the PKA baseline; it implements gpu.Runner.
type Runner struct {
	params  Params
	history map[kernelKey]kernelEntry
}

// New creates a PKA runner.
func New(params Params) *Runner {
	return &Runner{params: params, history: make(map[kernelKey]kernelEntry)}
}

// Name implements gpu.Runner.
func (r *Runner) Name() string { return "pka" }

func bucket(v float64) int {
	if v <= 0 {
		return 0
	}
	return int(math.Round(math.Log2(v) * 4)) // quarter-octave buckets
}

// RunKernel implements gpu.Runner.
func (r *Runner) RunKernel(g *gpu.GPU, l *kernel.Launch) (gpu.KernelResult, error) {
	start := time.Now()

	// Instruction-count estimate from a functional sample (stands in for
	// PKA's profiling counters).
	profile, err := core.AnalyzeOnline(l, r.params.SampleFraction)
	if err != nil {
		return gpu.KernelResult{}, err
	}
	totalInsts := profile.MeanWarpInsts * float64(l.TotalWarps())

	key := kernelKey{name: l.Name, warps: l.TotalWarps(), instBucket: bucket(profile.MeanWarpInsts)}
	if prev, ok := r.history[key]; ok {
		return gpu.KernelResult{
			SimTime: prev.simTime,
			Insts:   prev.insts,
			Mode:    "pka-kernel",
			Wall:    time.Since(start),
		}, nil
	}

	mon := &ipcMonitor{p: r.params}
	res, err := g.RunDetailed(l, mon, func() bool { return mon.triggered })
	if err != nil {
		return gpu.KernelResult{}, err
	}

	result := gpu.KernelResult{DetailedInsts: res.InstCount, Wall: 0}
	if res.Complete || !mon.triggered {
		result.Mode = "pka-full"
		result.SimTime = res.EndTime
		result.Insts = res.InstCount
	} else {
		// Extrapolate the remaining instructions at the stable IPC,
		// counting from the moment the monitor fired (the detailed model
		// drains in-flight workgroups past that point; PKA's model charges
		// the remainder at the stable rate).
		result.Mode = "pka-sampled"
		remaining := totalInsts - float64(res.InstCount)
		if remaining < 0 {
			remaining = 0
		}
		extra := event.Time(remaining / mon.stableIPC)
		result.SimTime = res.EndTime + extra
		result.Insts = uint64(totalInsts)
	}
	r.history[key] = kernelEntry{simTime: result.SimTime, insts: result.Insts}
	result.Wall = time.Since(start)
	return result, nil
}

var _ gpu.Runner = (*Runner)(nil)

// String describes the configuration.
func (r *Runner) String() string {
	return fmt.Sprintf("pka(s=%.2f, window=%d)", r.params.S, r.params.WindowCycles)
}
