// Package emu is the functional emulator: it executes warps of a kernel
// launch instruction-by-instruction over real register state, with lane
// masking for divergence. The timing model drives it one instruction at a
// time in detailed mode; fast-forward (sampled) modes run it in a tight loop
// with no timing at all — the speed gap between those two paths is exactly
// what sampled simulation exploits.
//
// Warp state lives in a structure-of-arrays WarpStore; a Warp is a thin
// slot handle into one, so batch execution sweeps contiguous slabs.
package emu

import (
	"fmt"
	"math"

	"photon/internal/sim/isa"
	"photon/internal/sim/kernel"
)

// StepKind tells the timing model what a step did.
type StepKind uint8

const (
	StepALU StepKind = iota
	StepVectorMem
	StepAtomic
	StepScalarMem
	StepLDS
	StepBarrier
	StepWaitcnt
	StepDone
)

// StepInfo reports the side effects of executing one instruction, for the
// timing model's consumption. Addrs aliases the warp's store-shared scratch
// buffer and is only valid until the next Step on any warp of that store.
type StepInfo struct {
	Kind     StepKind
	Inst     *isa.Inst
	IsStore  bool
	Addrs    []uint64 // per-active-lane byte addresses for vector memory
	SAddr    uint64   // address for scalar loads
	EnteredB bool     // this instruction is the first of a basic block
	BlockIdx int      // static basic-block index containing the instruction

	// AtomicVals/AtomicLanes are the captured per-lane operand values and
	// lane indices of a deferred atomic (SetDeferAtomics mode). They alias
	// store scratch with Addrs' lifetime; the caller must copy them before
	// the next Step and replay them through Warp.ApplyAtomic.
	AtomicVals  []uint32
	AtomicLanes []uint8
}

// Warp is a handle to one wavefront's architectural state: a slot in a
// WarpStore plus the identity fields that never change over the warp's
// lifetime. Handles are small values; copy them freely, but note that
// copies share the underlying slot.
type Warp struct {
	Launch    *kernel.Launch
	GlobalID  int
	GroupID   int
	IDInGroup int

	store *WarpStore
	slot  int
	lds   []byte // shared with the other warps of the workgroup
}

// NewWarp creates warp warpID of the launch, backed by a private
// single-slot store. lds is the workgroup's local-data-share backing,
// shared between sibling warps. The batch paths (Group, Replayer, the
// timing machine) bind warps into shared stores instead.
func NewWarp(l *kernel.Launch, globalID int, lds []byte) *Warp {
	w := &Warp{}
	w.Reset(l, globalID, lds)
	return w
}

// Reset reinitializes a standalone warp for a new dispatch, reusing its
// private store's slabs when they are large enough. After Reset the warp is
// indistinguishable from a NewWarp result. Warps bound into a shared store
// are rebound through WarpStore.Bind instead.
func (w *Warp) Reset(l *kernel.Launch, globalID int, lds []byte) {
	if w.store == nil {
		w.store = &WarpStore{}
	}
	w.store.Configure(l, 1)
	*w = w.store.Bind(0, globalID, lds)
}

// Slot returns the warp's slot index in its store; the timing machine uses
// it to release slots at workgroup retirement.
func (w *Warp) Slot() int { return w.slot }

// PC returns the warp's program counter.
func (w *Warp) PC() int { return int(w.store.pc[w.slot]) }

// SCC returns the scalar condition code.
func (w *Warp) SCC() bool { return w.store.scc(w.slot) }

// SetSCC sets the scalar condition code (tests use it).
func (w *Warp) SetSCC(v bool) { w.store.setSCC(w.slot, v) }

// Exec returns the EXEC lane mask.
func (w *Warp) Exec() uint64 { return w.store.exec[w.slot] }

// SetExec sets the EXEC lane mask (tests use it).
func (w *Warp) SetExec(v uint64) { w.store.exec[w.slot] = v }

// VCC returns the vector condition code mask.
func (w *Warp) VCC() uint64 { return w.store.vcc[w.slot] }

// SetVCC sets the vector condition code mask (tests use it).
func (w *Warp) SetVCC(v uint64) { w.store.vcc[w.slot] = v }

// Done reports whether the warp executed s_endpgm.
func (w *Warp) Done() bool { return w.store.flags[w.slot]&flagDone != 0 }

// AtBarrier reports whether the warp is waiting at s_barrier.
func (w *Warp) AtBarrier() bool { return w.store.flags[w.slot]&flagBarrier != 0 }

// ClearBarrier resumes a warp waiting at s_barrier; the group runtimes call
// it once every live sibling has arrived.
func (w *Warp) ClearBarrier() { w.store.flags[w.slot] &^= flagBarrier }

// InstCount returns the number of dynamic instructions executed.
func (w *Warp) InstCount() uint64 { return w.store.instCount[w.slot] }

// BBCounts returns the warp's Basic Block Vector: entry counts per static
// basic block. The slice aliases the store's slab; it is valid until the
// slot is released or rebound.
func (w *Warp) BBCounts() []uint32 {
	s := w.store
	return s.bb[w.slot*s.blocks : (w.slot+1)*s.blocks]
}

func (w *Warp) sregs() []uint32 {
	s := w.store
	return s.sgpr[w.slot*s.sregs : (w.slot+1)*s.sregs]
}

func (w *Warp) vregs() []uint32 {
	s := w.store
	return s.vgpr[w.slot*s.vwords : (w.slot+1)*s.vwords]
}

// ActiveLanes returns the number of lanes enabled in EXEC.
func (w *Warp) ActiveLanes() int { return popcount(w.Exec()) }

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// sread reads a scalar source from the hoisted SGPR window.
func (w *Warp) sread(sgpr []uint32, o isa.Operand) uint32 {
	switch o.Kind {
	case isa.OperandSReg:
		return sgpr[o.Idx]
	case isa.OperandImm:
		return uint32(o.Imm)
	}
	return badOperand(w.Launch.Name, "scalar", o.Kind)
}

//go:noinline
func badOperand(name, class string, k isa.OperandKind) uint32 {
	panic(fmt.Sprintf("emu: %s: bad %s operand kind %d", name, class, k))
}

// vsrc resolves a vector-instruction source once per instruction rather than
// once per lane: a VReg source yields its wavefront-sized lane window,
// scalar registers and immediates a broadcast value. Sources an op does not
// declare (OperandNone) are never read and resolve to a zero broadcast.
func vsrc(sgpr, vgpr []uint32, o isa.Operand) (lanes []uint32, bcast uint32) {
	switch o.Kind {
	case isa.OperandVReg:
		base := int(o.Idx) * kernel.WavefrontSize
		return vgpr[base : base+kernel.WavefrontSize], 0
	case isa.OperandSReg:
		return nil, sgpr[o.Idx]
	case isa.OperandImm:
		return nil, uint32(o.Imm)
	}
	return nil, 0
}

// lv reads one lane of a source resolved by vsrc.
func lv(lanes []uint32, bcast uint32, lane int) uint32 {
	if lanes != nil {
		return lanes[lane]
	}
	return bcast
}

// vdst returns the destination register's lane window.
func vdst(vgpr []uint32, o isa.Operand) []uint32 {
	base := int(o.Idx) * kernel.WavefrontSize
	return vgpr[base : base+kernel.WavefrontSize]
}

// SReg returns scalar register i (for tests and debugging).
func (w *Warp) SReg(i int) uint32 { return w.sregs()[i] }

// VReg returns vector register i of the given lane (for tests).
func (w *Warp) VReg(i, lane int) uint32 { return w.vregs()[i*kernel.WavefrontSize+lane] }

func f32(bits uint32) float32 { return math.Float32frombits(bits) }
func bits32(f float32) uint32 { return math.Float32bits(f) }
func sext(v uint32) int32     { return int32(v) }

// Step executes the instruction at PC and advances the warp. It must not be
// called on a Done warp; callers resume barriers by ClearBarrier. The SGPR
// and VGPR windows are hoisted once per instruction so the hot loop indexes
// flat slices instead of re-slicing the slabs per operand.
func (w *Warp) Step(info *StepInfo) {
	st := w.store
	slot := w.slot
	if st.flags[slot]&flagDone != 0 {
		panic(fmt.Sprintf("emu: %s warp %d stepped after s_endpgm", w.Launch.Name, w.GlobalID))
	}
	p := w.Launch.Program
	pc := int(st.pc[slot])
	in := &p.Insts[pc]
	*info = StepInfo{Kind: StepALU, Inst: in, BlockIdx: p.BlockIndexAt(pc)}
	if p.BlockStartsAt(pc) {
		info.EnteredB = true
		st.bb[slot*st.blocks+info.BlockIdx]++
	}
	st.instCount[slot]++
	nextPC := pc + 1
	sgpr := st.sgpr[slot*st.sregs : (slot+1)*st.sregs]

	switch in.Op {
	// ---- scalar ALU ----
	case isa.OpSMov:
		sgpr[in.Dst.Idx] = w.sread(sgpr, in.Src0)
	case isa.OpSAdd:
		sgpr[in.Dst.Idx] = w.sread(sgpr, in.Src0) + w.sread(sgpr, in.Src1)
	case isa.OpSSub:
		sgpr[in.Dst.Idx] = w.sread(sgpr, in.Src0) - w.sread(sgpr, in.Src1)
	case isa.OpSMul:
		sgpr[in.Dst.Idx] = uint32(sext(w.sread(sgpr, in.Src0)) * sext(w.sread(sgpr, in.Src1)))
	case isa.OpSLShl:
		sgpr[in.Dst.Idx] = w.sread(sgpr, in.Src0) << (w.sread(sgpr, in.Src1) & 31)
	case isa.OpSLShr:
		sgpr[in.Dst.Idx] = w.sread(sgpr, in.Src0) >> (w.sread(sgpr, in.Src1) & 31)
	case isa.OpSAnd:
		sgpr[in.Dst.Idx] = w.sread(sgpr, in.Src0) & w.sread(sgpr, in.Src1)
	case isa.OpSOr:
		sgpr[in.Dst.Idx] = w.sread(sgpr, in.Src0) | w.sread(sgpr, in.Src1)
	case isa.OpSXor:
		sgpr[in.Dst.Idx] = w.sread(sgpr, in.Src0) ^ w.sread(sgpr, in.Src1)
	case isa.OpSMin:
		a, b := sext(w.sread(sgpr, in.Src0)), sext(w.sread(sgpr, in.Src1))
		if b < a {
			a = b
		}
		sgpr[in.Dst.Idx] = uint32(a)
	case isa.OpSMax:
		a, b := sext(w.sread(sgpr, in.Src0)), sext(w.sread(sgpr, in.Src1))
		if b > a {
			a = b
		}
		sgpr[in.Dst.Idx] = uint32(a)
	case isa.OpSDiv:
		sgpr[in.Dst.Idx] = w.sread(sgpr, in.Src0) / w.sread(sgpr, in.Src1)
	case isa.OpSMod:
		sgpr[in.Dst.Idx] = w.sread(sgpr, in.Src0) % w.sread(sgpr, in.Src1)
	case isa.OpSCmpLt:
		st.setSCC(slot, sext(w.sread(sgpr, in.Src0)) < sext(w.sread(sgpr, in.Src1)))
	case isa.OpSCmpLe:
		st.setSCC(slot, sext(w.sread(sgpr, in.Src0)) <= sext(w.sread(sgpr, in.Src1)))
	case isa.OpSCmpEq:
		st.setSCC(slot, w.sread(sgpr, in.Src0) == w.sread(sgpr, in.Src1))
	case isa.OpSCmpNe:
		st.setSCC(slot, w.sread(sgpr, in.Src0) != w.sread(sgpr, in.Src1))
	case isa.OpSCmpGt:
		st.setSCC(slot, sext(w.sread(sgpr, in.Src0)) > sext(w.sread(sgpr, in.Src1)))
	case isa.OpSCmpGe:
		st.setSCC(slot, sext(w.sread(sgpr, in.Src0)) >= sext(w.sread(sgpr, in.Src1)))

	// ---- vector ALU ----
	case isa.OpVMov, isa.OpVAdd, isa.OpVSub, isa.OpVMul, isa.OpVMad,
		isa.OpVLShl, isa.OpVLShr, isa.OpVAnd, isa.OpVOr, isa.OpVXor,
		isa.OpVMin, isa.OpVMax, isa.OpVDiv, isa.OpVMod,
		isa.OpVFAdd, isa.OpVFSub, isa.OpVFMul, isa.OpVFFma, isa.OpVFMin,
		isa.OpVFMax, isa.OpVFRcp, isa.OpVFSqrt, isa.OpVFExp, isa.OpVFAbs,
		isa.OpVCvtI2F, isa.OpVCvtF2I:
		w.vectorALU(in, sgpr)

	// ---- vector compares ----
	case isa.OpVCmpLt, isa.OpVCmpLe, isa.OpVCmpEq, isa.OpVCmpNe,
		isa.OpVCmpGt, isa.OpVCmpGe, isa.OpVFCmpLt, isa.OpVFCmpGt:
		w.vectorCmp(in, sgpr)

	// ---- exec mask ----
	case isa.OpSAndSaveExec:
		st.masks[slot*maskSlots+int(in.Dst.Idx)] = st.exec[slot]
		st.exec[slot] &= st.vcc[slot]
	case isa.OpSAndNotExec:
		st.exec[slot] = st.masks[slot*maskSlots+int(in.Src0.Idx)] &^ st.vcc[slot]
	case isa.OpSSetExec:
		st.exec[slot] = st.masks[slot*maskSlots+int(in.Src0.Idx)]
	case isa.OpSMovExecAll:
		st.exec[slot] = ^uint64(0)

	// ---- memory ----
	case isa.OpSLoad:
		addr := uint64(w.sread(sgpr, in.Src0)) + uint64(int64(in.Offset))
		sgpr[in.Dst.Idx] = st.mem.Read32(addr)
		info.Kind = StepScalarMem
		info.SAddr = addr
	case isa.OpVLoad:
		w.vectorMem(in, info, sgpr, false)
	case isa.OpVStore:
		w.vectorMem(in, info, sgpr, true)
	case isa.OpVAtomicAdd, isa.OpVAtomicMax, isa.OpVAtomicMin, isa.OpVAtomicFAdd:
		w.atomicMem(in, info, sgpr)
	case isa.OpLDSLoad:
		w.ldsAccess(in, info, sgpr, false)
	case isa.OpLDSStore:
		w.ldsAccess(in, info, sgpr, true)

	// ---- control ----
	case isa.OpSBranch:
		nextPC = in.Target
	case isa.OpCBranchSCC0:
		if !st.scc(slot) {
			nextPC = in.Target
		}
	case isa.OpCBranchSCC1:
		if st.scc(slot) {
			nextPC = in.Target
		}
	case isa.OpCBranchVCCZ:
		if st.vcc[slot] == 0 {
			nextPC = in.Target
		}
	case isa.OpCBranchVCCNZ:
		if st.vcc[slot] != 0 {
			nextPC = in.Target
		}
	case isa.OpCBranchExecZ:
		if st.exec[slot] == 0 {
			nextPC = in.Target
		}
	case isa.OpCBranchExecNZ:
		if st.exec[slot] != 0 {
			nextPC = in.Target
		}
	case isa.OpSBarrier:
		st.flags[slot] |= flagBarrier
		info.Kind = StepBarrier
	case isa.OpSWaitcnt:
		st.outMem[slot] = 0
		info.Kind = StepWaitcnt
	case isa.OpSNop:
		// nothing
	case isa.OpSEndpgm:
		st.flags[slot] |= flagDone
		info.Kind = StepDone
	default:
		panic(fmt.Sprintf("emu: %s: unimplemented op %s", w.Launch.Name, in.Op))
	}

	st.pc[slot] = int32(nextPC)
}

func (w *Warp) vectorALU(in *isa.Inst, sgpr []uint32) {
	vgpr := w.vregs()
	exec := w.store.exec[w.slot]
	l0, b0 := vsrc(sgpr, vgpr, in.Src0)
	l1, b1 := vsrc(sgpr, vgpr, in.Src1)
	l2, b2 := vsrc(sgpr, vgpr, in.Src2)
	dst := vdst(vgpr, in.Dst)
	for lane := 0; lane < kernel.WavefrontSize; lane++ {
		if exec&(1<<uint(lane)) == 0 {
			continue
		}
		a, b := lv(l0, b0, lane), lv(l1, b1, lane)
		var r uint32
		switch in.Op {
		case isa.OpVMov:
			r = a
		case isa.OpVAdd:
			r = a + b
		case isa.OpVSub:
			r = a - b
		case isa.OpVMul:
			r = uint32(sext(a) * sext(b))
		case isa.OpVMad:
			r = uint32(sext(a)*sext(b)) + lv(l2, b2, lane)
		case isa.OpVLShl:
			r = a << (b & 31)
		case isa.OpVLShr:
			r = a >> (b & 31)
		case isa.OpVAnd:
			r = a & b
		case isa.OpVOr:
			r = a | b
		case isa.OpVXor:
			r = a ^ b
		case isa.OpVMin:
			x, y := sext(a), sext(b)
			if y < x {
				x = y
			}
			r = uint32(x)
		case isa.OpVMax:
			x, y := sext(a), sext(b)
			if y > x {
				x = y
			}
			r = uint32(x)
		case isa.OpVDiv:
			r = a / b
		case isa.OpVMod:
			r = a % b
		case isa.OpVFAdd:
			r = bits32(f32(a) + f32(b))
		case isa.OpVFSub:
			r = bits32(f32(a) - f32(b))
		case isa.OpVFMul:
			r = bits32(f32(a) * f32(b))
		case isa.OpVFFma:
			r = bits32(f32(a)*f32(b) + f32(lv(l2, b2, lane)))
		case isa.OpVFMin:
			r = bits32(float32(math.Min(float64(f32(a)), float64(f32(b)))))
		case isa.OpVFMax:
			r = bits32(float32(math.Max(float64(f32(a)), float64(f32(b)))))
		case isa.OpVFRcp:
			r = bits32(1 / f32(a))
		case isa.OpVFSqrt:
			r = bits32(float32(math.Sqrt(float64(f32(a)))))
		case isa.OpVFExp:
			r = bits32(float32(math.Exp(float64(f32(a)))))
		case isa.OpVFAbs:
			r = bits32(float32(math.Abs(float64(f32(a)))))
		case isa.OpVCvtI2F:
			r = bits32(float32(sext(a)))
		case isa.OpVCvtF2I:
			r = uint32(int32(f32(a)))
		}
		dst[lane] = r
	}
}

func (w *Warp) vectorCmp(in *isa.Inst, sgpr []uint32) {
	vgpr := w.vregs()
	exec := w.store.exec[w.slot]
	l0, b0 := vsrc(sgpr, vgpr, in.Src0)
	l1, b1 := vsrc(sgpr, vgpr, in.Src1)
	var vcc uint64
	for lane := 0; lane < kernel.WavefrontSize; lane++ {
		if exec&(1<<uint(lane)) == 0 {
			continue
		}
		a, b := lv(l0, b0, lane), lv(l1, b1, lane)
		var t bool
		switch in.Op {
		case isa.OpVCmpLt:
			t = sext(a) < sext(b)
		case isa.OpVCmpLe:
			t = sext(a) <= sext(b)
		case isa.OpVCmpEq:
			t = a == b
		case isa.OpVCmpNe:
			t = a != b
		case isa.OpVCmpGt:
			t = sext(a) > sext(b)
		case isa.OpVCmpGe:
			t = sext(a) >= sext(b)
		case isa.OpVFCmpLt:
			t = f32(a) < f32(b)
		case isa.OpVFCmpGt:
			t = f32(a) > f32(b)
		}
		if t {
			vcc |= 1 << uint(lane)
		}
	}
	w.store.vcc[w.slot] = vcc
}

func (w *Warp) vectorMem(in *isa.Inst, info *StepInfo, sgpr []uint32, store bool) {
	info.Kind = StepVectorMem
	info.IsStore = store
	st := w.store
	vgpr := w.vregs()
	exec := st.exec[w.slot]
	la, ba := vsrc(sgpr, vgpr, in.Src0)
	lval, bval := vsrc(sgpr, vgpr, in.Src1)
	var dst []uint32
	if !store {
		dst = vdst(vgpr, in.Dst)
	}
	n := 0
	memArena := st.mem
	for lane := 0; lane < kernel.WavefrontSize; lane++ {
		if exec&(1<<uint(lane)) == 0 {
			continue
		}
		addr := uint64(lv(la, ba, lane)) + uint64(int64(in.Offset))
		st.addrBuf[n] = addr
		n++
		if store {
			memArena.Write32(addr, lv(lval, bval, lane))
		} else {
			dst[lane] = memArena.Read32(addr)
		}
	}
	info.Addrs = st.addrBuf[:n]
	st.outMem[w.slot]++
}

// atomicMem executes a per-lane read-modify-write. Lanes resolve in lane
// order, making intra-warp conflicts on one address deterministic.
func (w *Warp) atomicMem(in *isa.Inst, info *StepInfo, sgpr []uint32) {
	info.Kind = StepAtomic
	info.IsStore = true
	st := w.store
	vgpr := w.vregs()
	exec := st.exec[w.slot]
	la, ba := vsrc(sgpr, vgpr, in.Src0)
	lval, bval := vsrc(sgpr, vgpr, in.Src1)
	if st.deferAtomics {
		n := 0
		for lane := 0; lane < kernel.WavefrontSize; lane++ {
			if exec&(1<<uint(lane)) == 0 {
				continue
			}
			st.addrBuf[n] = uint64(lv(la, ba, lane)) + uint64(int64(in.Offset))
			st.atomVal[n] = lv(lval, bval, lane)
			st.atomLane[n] = uint8(lane)
			n++
		}
		info.Addrs = st.addrBuf[:n]
		info.AtomicVals = st.atomVal[:n]
		info.AtomicLanes = st.atomLane[:n]
		st.outMem[w.slot]++
		return
	}
	var dst []uint32
	if in.Dst.Kind == isa.OperandVReg {
		dst = vdst(vgpr, in.Dst)
	}
	n := 0
	memArena := st.mem
	for lane := 0; lane < kernel.WavefrontSize; lane++ {
		if exec&(1<<uint(lane)) == 0 {
			continue
		}
		addr := uint64(lv(la, ba, lane)) + uint64(int64(in.Offset))
		st.addrBuf[n] = addr
		n++
		old := memArena.Read32(addr)
		val := lv(lval, bval, lane)
		next := atomicRMW(in.Op, old, val)
		memArena.Write32(addr, next)
		if dst != nil {
			dst[lane] = old
		}
	}
	info.Addrs = st.addrBuf[:n]
	st.outMem[w.slot]++
}

// atomicRMW computes the next memory value of one atomic lane.
func atomicRMW(op isa.Op, old, val uint32) uint32 {
	switch op {
	case isa.OpVAtomicAdd:
		return old + val
	case isa.OpVAtomicMax:
		if sext(val) > sext(old) {
			return val
		}
		return old
	case isa.OpVAtomicMin:
		if sext(val) < sext(old) {
			return val
		}
		return old
	case isa.OpVAtomicFAdd:
		return bits32(f32(old) + f32(val))
	}
	panic(fmt.Sprintf("emu: atomicRMW on non-atomic op %s", op))
}

// ApplyAtomic replays a deferred atomic captured by Step under
// SetDeferAtomics: the read-modify-writes execute now, in the given lane
// order, and the old values land in the destination register if the
// instruction names one. The timing machine calls this at the quantum
// barrier at the operation's deterministic completion slot; destination
// writes landing after issue match hardware's asynchronous writeback, which
// well-formed programs order with s_waitcnt before reuse.
func (w *Warp) ApplyAtomic(in *isa.Inst, addrs []uint64, vals []uint32, lanes []uint8) {
	st := w.store
	var dst []uint32
	if in.Dst.Kind == isa.OperandVReg {
		dst = vdst(w.vregs(), in.Dst)
	}
	for i, addr := range addrs {
		old := st.mem.Read32(addr)
		st.mem.Write32(addr, atomicRMW(in.Op, old, vals[i]))
		if dst != nil {
			dst[lanes[i]] = old
		}
	}
}

func (w *Warp) ldsAccess(in *isa.Inst, info *StepInfo, sgpr []uint32, store bool) {
	info.Kind = StepLDS
	info.IsStore = store
	vgpr := w.vregs()
	exec := w.store.exec[w.slot]
	la, ba := vsrc(sgpr, vgpr, in.Src0)
	lval, bval := vsrc(sgpr, vgpr, in.Src1)
	var dst []uint32
	if !store {
		dst = vdst(vgpr, in.Dst)
	}
	for lane := 0; lane < kernel.WavefrontSize; lane++ {
		if exec&(1<<uint(lane)) == 0 {
			continue
		}
		addr := int(lv(la, ba, lane)) + int(in.Offset)
		if addr < 0 || addr+4 > len(w.lds) {
			panic(fmt.Sprintf("emu: %s warp %d: LDS access %d out of %d bytes",
				w.Launch.Name, w.GlobalID, addr, len(w.lds)))
		}
		if store {
			v := lv(lval, bval, lane)
			w.lds[addr] = byte(v)
			w.lds[addr+1] = byte(v >> 8)
			w.lds[addr+2] = byte(v >> 16)
			w.lds[addr+3] = byte(v >> 24)
		} else {
			v := uint32(w.lds[addr]) | uint32(w.lds[addr+1])<<8 |
				uint32(w.lds[addr+2])<<16 | uint32(w.lds[addr+3])<<24
			dst[lane] = v
		}
	}
}
