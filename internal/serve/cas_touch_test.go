package serve

import (
	"bytes"
	"errors"
	"log/slog"
	"os"
	"strings"
	"testing"
	"time"

	"photon/internal/obs"
)

// A failing recency touch must not turn a hit into a miss: the artifacts are
// already read, only the mtime mirror (restart eviction order) is affected.
// Every failure counts into serve_cas_touch_errors, and the warning is
// rate-limited to one per minute so a persistently read-only store does not
// flood the log sink.
func TestCASTouchFailureStillServesHit(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	log := obs.NewLogger(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelWarn}))
	c, err := OpenCAS(dir, 1<<20, reg, log)
	if err != nil {
		t.Fatal(err)
	}
	want := casOut(1)
	c.Put(casHash(1), want)

	c.touch = func(string, time.Time, time.Time) error { return errors.New("boom") }
	const gets = 3
	for i := 0; i < gets; i++ {
		got, ok := c.Get(casHash(1))
		if !ok || got != want {
			t.Fatalf("get %d with failing touch: got %+v ok=%v, want hit %+v", i, got, ok, want)
		}
	}
	if v := reg.Counter("serve_cas_touch_errors").Value(); v != gets {
		t.Fatalf("serve_cas_touch_errors = %d, want %d", v, gets)
	}
	if v := reg.Counter("serve_cas_hits").Value(); v != gets {
		t.Fatalf("serve_cas_hits = %d, want %d (touch failures must still count as hits)", v, gets)
	}
	if v := reg.Counter("serve_cas_misses").Value(); v != 0 {
		t.Fatalf("serve_cas_misses = %d, want 0", v)
	}
	// One window, three failures: one record delivered, two suppressed.
	if n := strings.Count(buf.String(), "recency touch failed"); n != 1 {
		t.Fatalf("touch warning logged %d times, want 1 (rate limit); log:\n%s", n, buf.String())
	}
	if s := c.touchLog.Suppressed(); s != gets-1 {
		t.Fatalf("touchLog.Suppressed() = %d, want %d", s, gets-1)
	}
}

// The regression the counter exists for: a store directory that became
// read-only (operator remount, permission migration) must keep serving hits.
// Note POSIX lets the file's owner set timestamps regardless of directory
// write permission, so whether the touch itself fails here depends on
// ownership; the counter and log contract is pinned by the injection test
// above. This test pins the user-visible invariant: Get stays a hit and
// never becomes an error in a read-only store.
func TestCASReadOnlyDirStillServesHit(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	c, err := OpenCAS(dir, 1<<20, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := casOut(2)
	c.Put(casHash(2), want)

	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chmod(dir, 0o755) })

	got, ok := c.Get(casHash(2))
	if !ok || got != want {
		t.Fatalf("get in read-only dir: got %+v ok=%v, want hit %+v", got, ok, want)
	}
	if v := reg.Counter("serve_cas_errors").Value(); v != 0 {
		t.Fatalf("serve_cas_errors = %d, want 0 (read-only dir is not a corruption)", v)
	}
	if v := reg.Counter("serve_cas_hits").Value(); v != 1 {
		t.Fatalf("serve_cas_hits = %d, want 1", v)
	}
}
