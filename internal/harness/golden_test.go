package harness

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"photon/internal/obs"
)

// The fig13 golden files pin the quick sweep's exact output — text rows and
// JSONL records — as captured before the hot-path optimization pass. They are
// the regression guard that performance work (event engine, pooling, cached
// metadata) never changes simulated results: any drift in cycle counts,
// sampling decisions or record ordering shows up as a byte diff.

const (
	goldenTxt   = "testdata/fig13_quick.golden.txt"
	goldenJSONL = "testdata/fig13_quick.golden.jsonl"
)

// TestFig13GoldenArtifacts validates the committed golden files themselves:
// parseable records, the expected sweep shape, and agreement between the text
// table and the JSONL stream. This always runs, so a corrupted or
// hand-mangled golden is caught even when the full sweep test is skipped.
func TestFig13GoldenArtifacts(t *testing.T) {
	jf, err := os.Open(filepath.FromSlash(goldenJSONL))
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	recs, err := ReadRecords(jf)
	if err != nil {
		t.Fatal(err)
	}
	// Quick mode: one size per benchmark, three runners per point.
	if len(recs) == 0 || len(recs)%3 != 0 {
		t.Fatalf("golden has %d records, want a positive multiple of 3", len(recs))
	}
	txt, err := os.ReadFile(filepath.FromSlash(goldenTxt))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(txt), "\n"), "\n")
	// Header + column line + one row per record.
	if want := 2 + len(recs); len(lines) != want {
		t.Fatalf("golden txt has %d lines, want %d (2 header + %d rows)", len(lines), want, len(recs))
	}
	wantOrder := []string{"full", "pka", "photon"}
	for i, r := range recs {
		if r.Experiment != "fig13" {
			t.Fatalf("record %d experiment = %q, want fig13", i, r.Experiment)
		}
		if r.Runner != wantOrder[i%3] {
			t.Fatalf("record %d runner = %q, want %q (plan order)", i, r.Runner, wantOrder[i%3])
		}
		if r.Runner == "full" && r.SimCycles != r.FullCycles {
			t.Fatalf("record %d: full runner sim_cycles %d != full_cycles %d", i, r.SimCycles, r.FullCycles)
		}
		row := lines[2+i]
		if !strings.HasPrefix(row, r.Bench) || !strings.Contains(row, " "+r.Runner+" ") {
			t.Fatalf("txt row %d %q does not match record %s/%s", i, row, r.Bench, r.Runner)
		}
	}
}

// TestFig13MatchesGolden re-runs the full fig13 quick sweep in-process and
// byte-compares both artifacts against the goldens. The sweep simulates every
// benchmark in full-detailed mode, so it takes on the order of a minute;
// set PHOTON_GOLDEN=1 to run it (CI's bench job does).
func TestFig13MatchesGolden(t *testing.T) {
	if os.Getenv("PHOTON_GOLDEN") == "" {
		t.Skip("full fig13 sweep takes ~1 min; set PHOTON_GOLDEN=1 to run")
	}
	var txt, jsonl bytes.Buffer
	o := DefaultOptions()
	o.Quick = true
	o.FixedWall = true
	o.Parallel = 1
	o.Baselines = NewBaselineCache()
	o.JSON = NewJSONSink(&jsonl)
	// The acceptance bar for the observability layer: default-level (Info)
	// structured logging and the always-on flight recorder attached, output
	// still byte-identical to the pre-observability goldens.
	var logBuf bytes.Buffer
	o.Log = obs.NewTextLogger(&logBuf, slog.LevelInfo)
	o.Flight = obs.NewFlightRecorder(1024)
	o.Accuracy = NewAccuracySink(io.Discard)
	if err := Fig13(&txt, o); err != nil {
		t.Fatal(err)
	}
	if o.Flight.Total() == 0 {
		t.Error("flight recorder recorded nothing during the sweep")
	}
	// photon-bench prints a blank separator line after each experiment; the
	// golden was captured from its stdout.
	txt.WriteByte('\n')

	wantTxt, err := os.ReadFile(filepath.FromSlash(goldenTxt))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(txt.Bytes(), wantTxt) {
		t.Errorf("fig13 text output drifted from golden:\n%s", diffHint(txt.Bytes(), wantTxt))
	}
	wantJSONL, err := os.ReadFile(filepath.FromSlash(goldenJSONL))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonl.Bytes(), wantJSONL) {
		t.Errorf("fig13 JSONL records drifted from golden:\n%s", diffHint(jsonl.Bytes(), wantJSONL))
	}
}

// diffHint reports the first differing line so a golden failure is readable
// without an external diff tool.
func diffHint(got, want []byte) string {
	g := strings.Split(string(got), "\n")
	w := strings.Split(string(want), "\n")
	n := len(g)
	if len(w) < n {
		n = len(w)
	}
	for i := 0; i < n; i++ {
		if g[i] != w[i] {
			return fmt.Sprintf("line %d:\n  got:  %s\n  want: %s", i+1, g[i], w[i])
		}
	}
	return fmt.Sprintf("line counts differ: got %d, want %d", len(g), len(w))
}
