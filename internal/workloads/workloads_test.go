package workloads

import (
	"crypto/aes"
	"encoding/binary"
	"testing"

	"photon/internal/sim/emu"
	"photon/internal/sim/gpu"
	"photon/internal/sim/isa"
)

// runFunctional executes every launch of the app with the functional
// emulator and then runs its correctness check.
func runFunctional(t *testing.T, app *App) {
	t.Helper()
	for _, l := range app.Launches {
		if _, err := emu.RunKernelFunctional(l); err != nil {
			t.Fatalf("%s/%s: %v", app.Name, l.Name, err)
		}
	}
	if app.Check == nil {
		t.Fatalf("%s: no correctness check", app.Name)
	}
	if err := app.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestReLUFunctional(t *testing.T) {
	app, err := BuildReLU(64)
	if err != nil {
		t.Fatal(err)
	}
	runFunctional(t, app)
}

func TestFIRFunctional(t *testing.T) {
	app, err := BuildFIR(32)
	if err != nil {
		t.Fatal(err)
	}
	runFunctional(t, app)
}

func TestSCFunctional(t *testing.T) {
	app, err := BuildSC(64) // 4096 threads = 8 rows of 512
	if err != nil {
		t.Fatal(err)
	}
	runFunctional(t, app)
}

func TestMMFunctional(t *testing.T) {
	app, err := BuildMM(64) // N=64
	if err != nil {
		t.Fatal(err)
	}
	runFunctional(t, app)
}

func TestMMRejectsBadSize(t *testing.T) {
	if _, err := BuildMM(100); err == nil {
		t.Fatal("MM accepted a size with no power-of-two edge")
	}
}

func TestAESFunctional(t *testing.T) {
	app, err := BuildAES(2)
	if err != nil {
		t.Fatal(err)
	}
	runFunctional(t, app)
}

// TestAESReferenceMatchesStdlib proves the host reference (and therefore the
// kernel, which app.Check compares against it) implements real AES-256 by
// checking it against crypto/aes.
func TestAESReferenceMatchesStdlib(t *testing.T) {
	rng := newRNG(42)
	var key [32]byte
	for i := range key {
		key[i] = byte(rng.next())
	}
	rk := aesExpandKey256(key)
	block, err := aes.NewCipher(key[:])
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		var pt [16]byte
		for i := range pt {
			pt[i] = byte(rng.next())
		}
		var want [16]byte
		block.Encrypt(want[:], pt[:])

		var ptWords, wantWords [4]uint32
		for i := 0; i < 4; i++ {
			ptWords[i] = binary.BigEndian.Uint32(pt[4*i:])
			wantWords[i] = binary.BigEndian.Uint32(want[4*i:])
		}
		if got := aesEncryptBlockRef(rk, ptWords); got != wantWords {
			t.Fatalf("trial %d: aesEncryptBlockRef = %#x, want %#x", trial, got, wantWords)
		}
	}
}

func TestSPMVFunctional(t *testing.T) {
	app, err := BuildSPMV(16)
	if err != nil {
		t.Fatal(err)
	}
	runFunctional(t, app)
}

func TestPageRankFunctional(t *testing.T) {
	app, err := BuildPageRank(16 * 64)
	if err != nil {
		t.Fatal(err)
	}
	runFunctional(t, app)
	if len(app.Launches) != 2*prIterations {
		t.Fatalf("launches = %d, want %d", len(app.Launches), 2*prIterations)
	}
}

func TestPageRankRejectsUnalignedNodes(t *testing.T) {
	if _, err := BuildPageRank(100); err == nil {
		t.Fatal("unaligned node count accepted")
	}
}

// TestBenchmarksUnderDetailedTiming runs every Table 2 benchmark at a small
// size through the full detailed machine and re-checks functional
// correctness — timing-interleaved execution must not change results.
func TestBenchmarksUnderDetailedTiming(t *testing.T) {
	smallSizes := map[string]int{
		"AES": 2, "FIR": 16, "SC": 16, "MM": 64, "ReLU": 32, "SPMV": 8,
	}
	g := gpu.New(gpu.R9Nano())
	for _, spec := range Table2() {
		spec := spec
		t.Run(spec.Abbr, func(t *testing.T) {
			app, err := spec.Build(smallSizes[spec.Abbr])
			if err != nil {
				t.Fatal(err)
			}
			runner := gpu.FullRunner{}
			for _, l := range app.Launches {
				res, err := runner.RunKernel(g, l)
				if err != nil {
					t.Fatal(err)
				}
				if res.SimTime <= 0 || res.Insts == 0 {
					t.Fatalf("%s: degenerate result %+v", l.Name, res)
				}
			}
			if err := app.Check(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestTable2Registry(t *testing.T) {
	specs := Table2()
	if len(specs) != 6 {
		t.Fatalf("Table2 has %d entries, want 6", len(specs))
	}
	for _, s := range specs {
		if len(s.Sizes) == 0 || s.Build == nil || s.Suite == "" {
			t.Errorf("incomplete spec %+v", s.Abbr)
		}
	}
	if _, err := FindSpec("MM"); err != nil {
		t.Error(err)
	}
	if _, err := FindSpec("nope"); err == nil {
		t.Error("FindSpec accepted unknown benchmark")
	}
}

func TestCSRShape(t *testing.T) {
	c := makeCSR(1000, 1000, 7)
	if int(c.rowPtr[1000]) != len(c.colIdx) || len(c.colIdx) != len(c.values) {
		t.Fatal("CSR arrays inconsistent")
	}
	// Skewed distribution: mean below 16 but max above 32.
	mean := float64(len(c.colIdx)) / 1000
	if mean < 1 || mean > 24 {
		t.Fatalf("mean row length %v out of expected band", mean)
	}
	if c.maxilen <= 32 {
		t.Fatalf("max row length %d; want a long tail > 32", c.maxilen)
	}
	for _, col := range c.colIdx {
		if int(col) >= 1000 {
			t.Fatal("column index out of range")
		}
	}
}

func TestDeterministicBuilds(t *testing.T) {
	a1, err := BuildSPMV(4)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := BuildSPMV(4)
	if err != nil {
		t.Fatal(err)
	}
	p1 := a1.Launches[0].Program
	p2 := a2.Launches[0].Program
	if p1.Fingerprint != p2.Fingerprint {
		t.Fatal("same benchmark built twice produced different programs")
	}
}

func TestAppWithBlockOptions(t *testing.T) {
	app, err := BuildPageRank(8 * 64)
	if err != nil {
		t.Fatal(err)
	}
	split := app.WithBlockOptions(isa.BlockOptions{SplitAtWaitcnt: true})
	if len(split.Launches) != len(app.Launches) {
		t.Fatal("launch count changed")
	}
	for i, l := range split.Launches {
		orig := app.Launches[i]
		if l.Program.NumBlocks() <= orig.Program.NumBlocks() {
			t.Fatalf("%s: split program has %d blocks, original %d",
				l.Name, l.Program.NumBlocks(), orig.Program.NumBlocks())
		}
		if l.Program.Fingerprint == orig.Program.Fingerprint {
			t.Fatal("fingerprints must differ")
		}
	}
	// Shared programs stay shared: the two pr_contrib launches alias one
	// recompiled program.
	if split.Launches[0].Program != split.Launches[2].Program {
		t.Fatal("recompiled programs not shared across identical launches")
	}
	// The split app still computes the right answer.
	for _, l := range split.Launches {
		if _, err := emu.RunKernelFunctional(l); err != nil {
			t.Fatal(err)
		}
	}
	if err := split.Check(); err != nil {
		t.Fatal(err)
	}
}
