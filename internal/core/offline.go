package core

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"

	"photon/internal/core/bbv"
	"photon/internal/sim/kernel"
)

// Offline Photon (paper Section 6.3, "Online/Offline Tradeoff"): everything
// the online analysis produces — warp types, BBVs, block distributions — is
// micro-architecture agnostic, so it can be saved once and reused across
// simulations of different hardware configurations. AnalysisStore is that
// cache; attach one to a Photon runner with SetStore and persist it with
// Save/Load.

// storedType is the serializable form of a warp-type profile.
type storedType struct {
	ID     uint64           `json:"id"`
	Count  int              `json:"count"`
	Insts  uint64           `json:"insts"`
	Vector [bbv.Dim]float64 `json:"vector"`
}

// storedProfile is the serializable form of a Profile.
type storedProfile struct {
	SampledWarps  int          `json:"sampled_warps"`
	SampledInsts  uint64       `json:"sampled_insts"`
	Types         []storedType `json:"types"`
	BlockInsts    []uint64     `json:"block_insts"`
	MeanWarpInsts float64      `json:"mean_warp_insts"`
}

// AnalysisStore caches online-analysis profiles keyed by the kernel's
// identity (program fingerprint, grid shape and arguments).
type AnalysisStore struct {
	profiles map[uint64]storedProfile
	hits     int
	misses   int
}

// NewAnalysisStore returns an empty store.
func NewAnalysisStore() *AnalysisStore {
	return &AnalysisStore{profiles: make(map[uint64]storedProfile)}
}

// Hits and Misses report cache effectiveness.
func (s *AnalysisStore) Hits() int   { return s.hits }
func (s *AnalysisStore) Misses() int { return s.misses }

// Len returns the number of cached profiles.
func (s *AnalysisStore) Len() int { return len(s.profiles) }

// launchKey identifies a kernel launch for caching purposes. Two launches
// with the same program, grid and arguments perform the same computation
// over the same inputs in this repository's deterministic workloads.
func launchKey(l *kernel.Launch) uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	put(l.Program.Fingerprint)
	put(uint64(l.NumWorkgroups))
	put(uint64(l.WarpsPerGroup))
	for _, a := range l.Args {
		put(uint64(a))
	}
	return h.Sum64()
}

func profileToStored(p *Profile) storedProfile {
	sp := storedProfile{
		SampledWarps:  p.SampledWarps,
		SampledInsts:  p.SampledInsts,
		BlockInsts:    p.BlockInsts,
		MeanWarpInsts: p.MeanWarpInsts,
	}
	for _, t := range p.Types {
		sp.Types = append(sp.Types, storedType{ID: t.ID, Count: t.Count, Insts: t.Insts, Vector: t.Vector})
	}
	sort.Slice(sp.Types, func(i, j int) bool { return sp.Types[i].ID < sp.Types[j].ID })
	return sp
}

func storedToProfile(sp storedProfile) *Profile {
	p := &Profile{
		SampledWarps:  sp.SampledWarps,
		SampledInsts:  sp.SampledInsts,
		BlockInsts:    sp.BlockInsts,
		MeanWarpInsts: sp.MeanWarpInsts,
		Types:         make(map[uint64]*bbv.TypeProfile, len(sp.Types)),
	}
	types := make([]bbv.TypeProfile, 0, len(sp.Types))
	for _, t := range sp.Types {
		tp := &bbv.TypeProfile{ID: t.ID, Count: t.Count, Insts: t.Insts, Vector: t.Vector}
		p.Types[t.ID] = tp
		types = append(types, *tp)
	}
	p.GPU = bbv.BuildGPU(types)
	return p
}

// Get returns the cached profile for the launch, if present.
func (s *AnalysisStore) Get(l *kernel.Launch) (*Profile, bool) {
	sp, ok := s.profiles[launchKey(l)]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	return storedToProfile(sp), true
}

// Put caches the launch's profile.
func (s *AnalysisStore) Put(l *kernel.Launch, p *Profile) {
	s.profiles[launchKey(l)] = profileToStored(p)
}

// Encode serializes the store as JSON.
func (s *AnalysisStore) Encode(w io.Writer) error {
	type entry struct {
		Key     uint64        `json:"key"`
		Profile storedProfile `json:"profile"`
	}
	entries := make([]entry, 0, len(s.profiles))
	for k, v := range s.profiles {
		entries = append(entries, entry{Key: k, Profile: v})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(entries)
}

// Decode loads a store serialized by Encode, merging into s.
func (s *AnalysisStore) Decode(r io.Reader) error {
	type entry struct {
		Key     uint64        `json:"key"`
		Profile storedProfile `json:"profile"`
	}
	var entries []entry
	if err := json.NewDecoder(r).Decode(&entries); err != nil {
		return fmt.Errorf("core: loading analysis store: %w", err)
	}
	for _, e := range entries {
		s.profiles[e.Key] = e.Profile
	}
	return nil
}

// SaveFile writes the store to path.
func (s *AnalysisStore) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Encode(f)
}

// LoadFile merges the store at path into s.
func (s *AnalysisStore) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Decode(f)
}

// SetStore attaches an analysis cache to the runner: profiles are looked up
// before running the online analysis and recorded after, turning Photon into
// its offline variant when the store was pre-populated by an earlier run.
func (p *Photon) SetStore(s *AnalysisStore) { p.store = s }

// analyze runs the online analysis through the store, when one is attached.
func (p *Photon) analyze(l *kernel.Launch) (*Profile, error) {
	if p.store != nil {
		if prof, ok := p.store.Get(l); ok {
			return prof, nil
		}
	}
	prof, err := AnalyzeOnline(l, p.params.SampleFraction)
	if err != nil {
		return nil, err
	}
	if p.store != nil {
		p.store.Put(l, prof)
	}
	return prof, nil
}
