// Command photon-serve is the photon simulation service: a stdlib-only HTTP
// daemon that accepts simulation and experiment jobs, runs them on a bounded
// worker pool over the harness job-graph engine, and answers repeated
// submissions from a content-addressed result cache.
//
//	photon-serve -addr :8080 -workers 2 -queue-depth 16
//
// API (see internal/serve):
//
//	POST   /v1/jobs               submit (202; 200 on cache hit; 429 when full)
//	GET    /v1/jobs               list jobs
//	GET    /v1/jobs/{id}          job status
//	GET    /v1/jobs/{id}/result   terminal artifacts
//	GET    /v1/jobs/{id}/accuracy per-kernel sampling-accuracy ledger (JSONL)
//	GET    /v1/jobs/{id}/events   SSE progress + log stream
//	DELETE /v1/jobs/{id}          cancel one submission
//	GET    /healthz /readyz /metrics /debug/flight
//
// /metrics answers JSON by default and Prometheus text exposition when the
// Accept header asks for it. Structured logs go to stderr (-log-level,
// -log-format); the flight recorder (-flight-cap) keeps the last N
// scheduler/tier/job events, dumpable via /debug/flight or SIGQUIT.
//
// SIGTERM/SIGINT starts a graceful drain: admission stops (readyz turns
// 503), queued and running jobs finish (bounded by -drain-timeout), then
// the process exits 0. SIGQUIT dumps the flight ring to stderr and keeps
// serving.
//
// With -cas-dir, completed results also persist in a disk-backed
// content-addressed store (capped by -cas-max-bytes, LRU-evicted), so a
// restarted daemon answers previously-completed jobs from disk without
// re-executing them.
//
// With -router, the process serves the same API as a cluster router over N
// workers instead of executing jobs itself:
//
//	photon-serve -router -nodes http://host1:8080,http://host2:8080
//
// Jobs are consistent-hashed across workers by their canonical request
// hash; the router probes the hash owner's cache before scheduling
// (federated lookup), steals work away from saturated queues
// (-steal-margin), and fails over along the ring's preference order when a
// worker dies (health from /readyz polls every -probe-interval).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"photon/internal/buildinfo"
	"photon/internal/harness"
	"photon/internal/obs"
	"photon/internal/serve"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("photon-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		workers      = fs.Int("workers", 1, "concurrent job executions")
		queueDepth   = fs.Int("queue-depth", 16, "pending jobs admitted beyond the running ones")
		jobParallel  = fs.Int("job-parallel", 0, "default engine workers per job (<= 0: one per CPU)")
		timeout      = fs.Duration("default-timeout", 0, "default per-job deadline, queue wait included (0: none)")
		retryAfter   = fs.Duration("retry-after", 2*time.Second, "backoff hint attached to 429 responses")
		drainTimeout = fs.Duration("drain-timeout", time.Minute, "how long shutdown waits for in-flight jobs")
		maxCached    = fs.Int("max-cached", 512, "completed results kept for cache hits")
		casDir       = fs.String("cas-dir", "", "disk CAS directory: completed results survive restarts (empty: memory only)")
		casMaxBytes  = fs.Int64("cas-max-bytes", 0, "disk CAS size cap in bytes (<= 0: 1 GiB)")
		router       = fs.Bool("router", false, "run as a cluster router over -nodes instead of executing jobs")
		nodes        = fs.String("nodes", "", "router mode: comma-separated worker URLs (or name=URL pairs)")
		routeRep     = fs.Int("route-replicas", 0, "router mode: virtual nodes per worker on the hash ring (<= 0: 64)")
		probeEvery   = fs.Duration("probe-interval", time.Second, "router mode: /readyz health-poll period")
		stealMargin  = fs.Int("steal-margin", 2, "router mode: queue-depth gap that triggers work stealing (< 0: disabled)")
		logLevel     = fs.String("log-level", "info", "minimum stderr log level (debug, info, warn, error)")
		logFormat    = fs.String("log-format", "text", "stderr log encoding (text or json)")
		flightCap    = fs.Int("flight-cap", 1024, "flight recorder ring capacity (0: disabled)")
		version      = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.Print("photon-serve"))
		return 0
	}

	level := obs.ParseLevel(*logLevel)
	var log *obs.Logger
	if *logFormat == "json" {
		log = obs.NewJSONLogger(stderr, level)
	} else {
		log = obs.NewTextLogger(stderr, level)
	}
	var flight *obs.FlightRecorder
	if *flightCap > 0 {
		flight = obs.NewFlightRecorder(*flightCap)
	}

	if *router {
		return runRouter(routerOptions{
			addr:        *addr,
			nodes:       *nodes,
			replicas:    *routeRep,
			probeEvery:  *probeEvery,
			stealMargin: *stealMargin,
			log:         log,
			stderr:      stderr,
		})
	}
	if *nodes != "" {
		fmt.Fprintln(stderr, "photon-serve: -nodes only applies with -router")
		return 2
	}

	reg := obs.NewRegistry()
	var store *serve.CAS
	if *casDir != "" {
		var err error
		store, err = serve.OpenCAS(*casDir, *casMaxBytes, reg, log)
		if err != nil {
			fmt.Fprintf(stderr, "photon-serve: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "photon-serve: disk CAS at %s (%d entries, %d bytes)\n",
			*casDir, store.Len(), store.Bytes())
	}
	sched := serve.NewScheduler(serve.Config{
		Workers:          *workers,
		QueueDepth:       *queueDepth,
		JobParallel:      *jobParallel,
		DefaultTimeout:   *timeout,
		RetryAfter:       *retryAfter,
		MaxCachedResults: *maxCached,
		Metrics:          reg,
		Log:              log,
		Flight:           flight,
		Baselines:        harness.NewBaselineCache(),
		Store:            store,
	})
	srv := &http.Server{
		Addr:    *addr,
		Handler: serve.NewServer(sched, reg).Handler(),
	}

	// Bind before announcing readiness so a supervisor that starts probing
	// right after exec never sees a connection refused from a live process.
	ln, err := net.Listen("tcp", srv.Addr)
	if err != nil {
		fmt.Fprintf(stderr, "photon-serve: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "photon-serve: %s\n", buildinfo.Get())
	fmt.Fprintf(stderr, "photon-serve: listening on %s (workers=%d queue=%d)\n",
		ln.Addr(), *workers, *queueDepth)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)

	// SIGQUIT becomes a diagnostic poke rather than a crash: dump the flight
	// ring (the last N scheduler/tier/job events) to stderr and keep serving.
	quitCh := make(chan os.Signal, 1)
	if flight != nil {
		signal.Notify(quitCh, syscall.SIGQUIT)
	}

loop:
	for {
		select {
		case <-quitCh:
			fmt.Fprintln(stderr, "photon-serve: SIGQUIT: dumping flight recorder")
			if err := flight.WriteText(stderr); err != nil {
				fmt.Fprintf(stderr, "photon-serve: flight dump: %v\n", err)
			}
		case sig := <-sigCh:
			fmt.Fprintf(stderr, "photon-serve: %v: draining (timeout %s)\n", sig, *drainTimeout)
			break loop
		case err := <-errCh:
			fmt.Fprintf(stderr, "photon-serve: serve: %v\n", err)
			return 1
		}
	}

	// Graceful drain: stop admitting (readyz goes 503 via sched.Draining),
	// let queued and in-flight jobs finish, then close the listener. Jobs
	// still running at the deadline are hard-cancelled through their
	// contexts; that is a clean shutdown too, just a less patient one.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := sched.Drain(ctx); err != nil {
		fmt.Fprintf(stderr, "photon-serve: drain: %v (in-flight jobs cancelled)\n", err)
	}
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(stderr, "photon-serve: shutdown: %v\n", err)
	}
	<-errCh // Serve has returned http.ErrServerClosed
	fmt.Fprintln(stderr, "photon-serve: drained, bye")
	return 0
}
