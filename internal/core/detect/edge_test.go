package detect

import (
	"encoding/binary"
	"math"
	"testing"
)

// TestRingWraparoundAtExactlyTwoWindows pins the ring indexing at the moment
// the buffer first becomes full: with exactly 2n samples, head has wrapped
// back to 0 and at(i) must still map i=1..n onto the recent half and
// i=n+1..2n onto the previous half.
func TestRingWraparoundAtExactlyTwoWindows(t *testing.T) {
	d := New(4, 0.03)
	feedLinear(d, 4, 0, 10, 10)  // previous half: duration 10
	feedLinear(d, 4, 40, 10, 30) // recent half: duration 30
	if d.head != 0 {
		t.Fatalf("head = %d after exactly 2n samples, want wrapped to 0", d.head)
	}
	if got := d.MeanDuration(); got != 30 {
		t.Fatalf("MeanDuration over the recent half = %v, want 30", got)
	}
	d.refresh()
	if d.meanPrev != 10 {
		t.Fatalf("previous-half mean = %v, want 10", d.meanPrev)
	}
	if d.Stable() {
		t.Fatal("plateau shift at the wraparound boundary declared stable")
	}

	// One more sample slides both halves by one: prev = samples 2..5
	// (durations 10,10,10,30 -> mean 15), recent = 6..9 (all 30).
	d.Add(80, 110)
	d.refresh()
	if d.meanPrev != 15 {
		t.Fatalf("previous-half mean after sliding one sample = %v, want 15", d.meanPrev)
	}
	if got := d.MeanDuration(); got != 30 {
		t.Fatalf("recent mean after sliding = %v, want 30", got)
	}
}

// TestZeroXVarianceSlopeNotNaN: identical issue times make the regression
// denominator exactly zero. The detector must report ok=false with a finite
// slope value, never NaN, and must stay unstable — and a later well-spread
// window must recover.
func TestZeroXVarianceSlopeNotNaN(t *testing.T) {
	d := New(8, 0.03)
	for i := 0; i < 16; i++ {
		d.Add(500, 600)
	}
	a, ok := d.Slope()
	if ok {
		t.Fatal("slope reported ok on zero x-variance")
	}
	if math.IsNaN(a) || math.IsInf(a, 0) {
		t.Fatalf("degenerate slope = %v, want finite", a)
	}
	if d.Stable() {
		t.Fatal("zero-x-variance series declared stable")
	}
	// Spread samples wash the degenerate ones out of the window.
	feedLinear(d, 16, 1000, 10, 100)
	if a, ok := d.Slope(); !ok || a < 0.99 || a > 1.01 {
		t.Fatalf("slope after recovery = %v ok=%v, want ~1", a, ok)
	}
}

// TestRefreshIdempotentAtSameCount: polling twice at one sample count must
// hit the cache and return identical values (the scheduler polls every unit
// on every retirement, many times per Add).
func TestRefreshIdempotentAtSameCount(t *testing.T) {
	d := New(16, 0.03)
	feedLinear(d, 32, 0, 10, 42)
	a1, ok1 := d.Slope()
	m1 := d.MeanDuration()
	s1 := d.Stable()
	if d.cachedAt != d.count {
		t.Fatalf("cachedAt = %d after a poll at count %d", d.cachedAt, d.count)
	}
	a2, ok2 := d.Slope()
	m2 := d.MeanDuration()
	s2 := d.Stable()
	if a1 != a2 || ok1 != ok2 || m1 != m2 || s1 != s2 {
		t.Fatalf("second poll at the same count changed answers: (%v %v %v %v) vs (%v %v %v %v)",
			a1, ok1, m1, s1, a2, ok2, m2, s2)
	}
}

// FuzzDetector feeds arbitrary (but finite) sample streams and asserts the
// detector's robustness properties: no NaN/Inf ever escapes, and the query
// methods are idempotent at a fixed sample count. The committed corpus runs
// in plain `go test`.
func FuzzDetector(f *testing.F) {
	f.Add(uint8(4), []byte{})
	f.Add(uint8(2), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(16), []byte{0xff, 0x00, 0x80, 0x7f, 0x10, 0x20, 0x30, 0x40,
		0x50, 0x60, 0x70, 0x80, 0x90, 0xa0, 0xb0, 0xc0})
	f.Fuzz(func(t *testing.T, win uint8, data []byte) {
		n := int(win)%64 + 2
		d := New(n, 0.03)
		x := 0.0
		for len(data) >= 4 {
			step := float64(binary.LittleEndian.Uint16(data))
			dur := float64(binary.LittleEndian.Uint16(data[2:]))
			data = data[4:]
			x += step
			d.Add(x, x+dur)

			a, ok := d.Slope()
			if math.IsNaN(a) || math.IsInf(a, 0) {
				t.Fatalf("slope = %v (ok=%v) at count %d", a, ok, d.Count())
			}
			for _, m := range []float64{d.MeanDuration(), d.GlobalMeanDuration()} {
				if math.IsNaN(m) || math.IsInf(m, 0) || m < 0 {
					t.Fatalf("mean = %v at count %d", m, d.Count())
				}
			}
			a2, ok2 := d.Slope()
			if a != a2 || ok != ok2 || d.Stable() != d.Stable() {
				t.Fatalf("queries not idempotent at count %d", d.Count())
			}
		}
	})
}
