package workloads

import (
	"fmt"

	"photon/internal/sim/isa"
	"photon/internal/sim/kernel"
	"photon/internal/sim/mem"
)

// BFS (breadth-first search) over a synthetic CSR graph, level-synchronous:
// one kernel launch per level, each scanning all vertices and relaxing the
// frontier's out-edges with atomic-min on the level array. An extension
// workload: highly irregular (the active frontier is a small, changing
// subset of threads) and multi-kernel (one launch per level, all sharing one
// program — a kernel-sampling stress case where the same code has different
// behavior per launch).

const bfsInfinity = 0x3fffffff

// bfsLevelProgram relaxes one level.
// Args: s8=rowPtr, s9=colIdx, s10=level, s11=n, s12=currentLevel.
func bfsLevelProgram() *isa.Program {
	b := isa.NewBuilder("bfs_level")
	emitTID(b, 1, 4)
	emitBoundsGuard(b, 1, 11, 0, "done")
	b.I(isa.OpVLShl, isa.V(2), isa.V(1), isa.Imm(2))
	b.I(isa.OpVAdd, isa.V(3), isa.V(2), isa.S(10))
	b.Load(isa.OpVLoad, isa.V(4), isa.V(3), 0) // level[v]
	b.Waitcnt(0)
	// Mask to the frontier: level[v] == currentLevel.
	b.I(isa.OpVCmpEq, isa.Operand{}, isa.V(4), isa.S(12))
	b.I(isa.OpSAndSaveExec, isa.Mask(1))
	b.Br(isa.OpCBranchExecZ, "exit")
	b.I(isa.OpVAdd, isa.V(5), isa.V(2), isa.S(8))
	b.Load(isa.OpVLoad, isa.V(6), isa.V(5), 0) // k = rowPtr[v]
	b.Load(isa.OpVLoad, isa.V(7), isa.V(5), 4) // end = rowPtr[v+1]
	b.Waitcnt(0)
	b.I(isa.OpSAdd, isa.S(5), isa.S(12), isa.Imm(1)) // next level
	b.Label("edge")
	b.I(isa.OpVCmpLt, isa.Operand{}, isa.V(6), isa.V(7))
	b.I(isa.OpSAndSaveExec, isa.Mask(2))
	b.Br(isa.OpCBranchExecZ, "edges_done")
	b.I(isa.OpVLShl, isa.V(8), isa.V(6), isa.Imm(2))
	b.I(isa.OpVAdd, isa.V(8), isa.V(8), isa.S(9))
	b.Load(isa.OpVLoad, isa.V(9), isa.V(8), 0) // nbr
	b.Waitcnt(0)
	b.I(isa.OpVLShl, isa.V(10), isa.V(9), isa.Imm(2))
	b.I(isa.OpVAdd, isa.V(10), isa.V(10), isa.S(10))
	b.I(isa.OpVAtomicMin, isa.Operand{}, isa.V(10), isa.S(5))
	b.Waitcnt(0)
	b.I(isa.OpVAdd, isa.V(6), isa.V(6), isa.Imm(1))
	b.I(isa.OpSSetExec, isa.Operand{}, isa.Mask(2))
	b.Br(isa.OpSBranch, "edge")
	b.Label("edges_done")
	b.I(isa.OpSSetExec, isa.Operand{}, isa.Mask(2))
	b.Label("exit")
	b.I(isa.OpSSetExec, isa.Operand{}, isa.Mask(1))
	emitEpilogue(b, 0, "done")
	return b.MustBuild()
}

// BuildBFS constructs the BFS extension workload over a graph with warps*64
// vertices. The number of level kernels is determined by a host-side BFS
// over the same graph, so the launch list is static and exact.
func BuildBFS(warps int) (*App, error) {
	if warps <= 0 {
		return nil, fmt.Errorf("bfs: warps must be positive")
	}
	m := mem.NewFlat()
	n := warps * kernel.WavefrontSize
	graph := makeCSR(n, n, 0xbf5) // row v lists out-edges of v

	// Host BFS for the reference levels and the level count.
	const src = 0
	want := make([]uint32, n)
	for i := range want {
		want[i] = bfsInfinity
	}
	want[src] = 0
	frontier := []uint32{src}
	levels := 0
	for len(frontier) > 0 {
		var next []uint32
		for _, v := range frontier {
			for k := graph.rowPtr[v]; k < graph.rowPtr[v+1]; k++ {
				nbr := graph.colIdx[k]
				if want[nbr] == bfsInfinity {
					want[nbr] = uint32(levels + 1)
					next = append(next, nbr)
				}
			}
		}
		frontier = next
		levels++
	}

	rowPtr := m.Alloc(uint64(4 * (n + 1)))
	colIdx := m.Alloc(uint64(4 * len(graph.colIdx)))
	level := m.Alloc(uint64(4 * n))
	m.WriteWords(rowPtr, graph.rowPtr)
	m.WriteWords(colIdx, graph.colIdx)
	init := make([]uint32, n)
	for i := range init {
		init[i] = bfsInfinity
	}
	init[src] = 0
	m.WriteWords(level, init)

	prog := bfsLevelProgram()
	app := &App{Name: "BFS", Mem: m}
	for cur := 0; cur < levels; cur++ {
		app.Launches = append(app.Launches, &kernel.Launch{
			Name: "bfs_level", Program: prog, Memory: m,
			NumWorkgroups: warps, WarpsPerGroup: 1,
			Args: []uint32{uint32(rowPtr), uint32(colIdx), uint32(level), uint32(n), uint32(cur)},
		})
	}

	app.Check = func() error {
		// Atomic-min makes the result schedule-independent: levels must
		// match the host BFS exactly.
		for v := 0; v < n; v++ {
			if got := m.Read32(level + uint64(4*v)); got != want[v] {
				return fmt.Errorf("bfs: level[%d] = %d, want %d", v, got, want[v])
			}
		}
		return nil
	}
	return app, nil
}
