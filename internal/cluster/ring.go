// Package cluster turns a set of photon-serve workers into one service: a
// consistent-hash router that owns the client-facing API, forwards each job
// to the worker owning its content hash, performs federated cache lookups
// against the owners' disk CAS stores before scheduling anything, steals
// work from deep queues, and fails over when a worker dies — all over the
// same stdlib net/http the single-node daemon uses.
//
// The division of labor: workers keep the entire execution model (scheduler,
// coalescing, CAS, SSE hubs, metrics); the router holds only soft state — a
// hash ring, per-node health from /readyz, and a bounded job-id mapping — so
// a router restart loses nothing but in-flight id translations.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// Ring is an immutable consistent-hash ring: each node appears as Replicas
// virtual points, and a key belongs to the first point at or after its own
// position. Immutability is deliberate — membership is fixed at router
// start, and health-aware rebalancing happens by walking the preference
// order past unhealthy nodes, not by rehashing, so a node bouncing in and
// out of readiness never migrates ownership of the whole keyspace.
type Ring struct {
	points []ringPoint // sorted by pos
	nodes  []string
}

type ringPoint struct {
	pos  uint64
	node string
}

// DefaultReplicas is the virtual-node count per worker: enough that a
// two-node ring splits the keyspace close to evenly.
const DefaultReplicas = 64

// NewRing builds a ring over nodes with the given virtual-node count per
// node (<= 0 picks DefaultReplicas). Node order does not matter; the ring
// is fully determined by the node names.
func NewRing(nodes []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{nodes: append([]string(nil), nodes...)}
	sort.Strings(r.nodes)
	r.points = make([]ringPoint, 0, len(nodes)*replicas)
	for _, n := range r.nodes {
		for i := 0; i < replicas; i++ {
			r.points = append(r.points, ringPoint{pos: ringHash(n + "#" + strconv.Itoa(i)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].pos != r.points[j].pos {
			return r.points[i].pos < r.points[j].pos
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// ringHash positions a string on the ring: the first 8 bytes of its SHA-256.
// Job keys are already hex SHA-256 request hashes, but hashing again keeps
// node names and keys in one uniformly-distributed space.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Nodes returns the ring's membership, sorted.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Owner returns the node owning key ("" for an empty ring).
func (r *Ring) Owner(key string) string {
	p := r.Preference(key)
	if len(p) == 0 {
		return ""
	}
	return p[0]
}

// Preference returns every node in the order they would assume ownership of
// key: the owner first, then each distinct successor around the ring. The
// router forwards to the first healthy entry, which is what makes failover
// deterministic — every router instance computes the same fallback for the
// same key.
func (r *Ring) Preference(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	start := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].pos >= ringHash(key)
	})
	seen := make(map[string]bool, len(r.nodes))
	pref := make([]string, 0, len(r.nodes))
	for i := 0; i < len(r.points) && len(pref) < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			pref = append(pref, p.node)
		}
	}
	return pref
}
