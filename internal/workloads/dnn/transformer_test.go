package dnn

import (
	"strings"
	"testing"

	"photon/internal/workloads"
)

func runApp(t *testing.T, app *workloads.App) {
	t.Helper()
	n := &Net{app: app}
	runAll(t, n)
	if err := app.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestTransformerBlockMatchesHost(t *testing.T) {
	app, err := BuildTransformerBlock(TransformerConfig{Heads: 2, DModel: 32, SeqLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	runApp(t, app)
}

func TestTransformerMultiLayerMatchesHost(t *testing.T) {
	app, err := BuildTransformer(TransformerConfig{Layers: 2, Heads: 2, DModel: 32, SeqLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	runApp(t, app)
}

// Repeated layers and heads must share programs pointer-identically — that
// equality is what makes their kernels byte-identical launches for the
// kernel-sampling tier.
func TestTransformerLayersSharePrograms(t *testing.T) {
	app, err := BuildTransformer(TransformerConfig{Layers: 3, Heads: 2, DModel: 32, SeqLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	bySuffix := make(map[string]map[interface{}]bool)
	for _, l := range app.Launches {
		i := strings.Index(l.Name, ".")
		suffix := l.Name[i+1:]
		if bySuffix[suffix] == nil {
			bySuffix[suffix] = make(map[interface{}]bool)
		}
		bySuffix[suffix][l.Program] = true
	}
	for suffix, progs := range bySuffix {
		if len(progs) != 1 {
			t.Errorf("kernel role %q uses %d distinct programs, want 1", suffix, len(progs))
		}
	}
	if len(bySuffix) == 0 {
		t.Fatal("no launches")
	}
}

func TestTransformerConfigValidation(t *testing.T) {
	bad := []TransformerConfig{
		{Layers: 1, Heads: 3, DModel: 32, SeqLen: 16},  // heads don't divide
		{Layers: 1, Heads: 1, DModel: 128, SeqLen: 16}, // head dim > wavefront
		{Layers: 1, Heads: 2, DModel: 48, SeqLen: 16},  // d_model not pow2
		{Layers: 1, Heads: 2, DModel: 32, SeqLen: 24},  // seq not pow2
		{Layers: 1, Heads: 2, DModel: 32, SeqLen: 512}, // seq too large
		{Layers: 0, Heads: 2, DModel: 32, SeqLen: 16},  // no layers
	}
	for _, cfg := range bad {
		if _, err := BuildTransformer(cfg); err == nil {
			t.Errorf("config %+v: expected error", cfg)
		}
	}
}

func TestTrainingStepMatchesHost(t *testing.T) {
	app, err := BuildTrainingStep(2)
	if err != nil {
		t.Fatal(err)
	}
	runApp(t, app)
}

func TestTrainingStepBatch1MatchesHost(t *testing.T) {
	app, err := BuildTrainingStep(1)
	if err != nil {
		t.Fatal(err)
	}
	runApp(t, app)
}

func TestBatchedConvPoolFCMatchHost(t *testing.T) {
	n := NewNet("batched", 7)
	in := n.InputBatch(2, 4, 8, 8, 1)
	c1 := n.Conv("conv", in, 8, 3, 1, 1, 1, true)
	w1 := uint64(lastLaunch(n).Args[1])
	cs := ConvSpec{CI: 4, CO: 8, IH: 8, IW: 8, K: 3, Stride: 1, Pad: 1, OutPad: 1, ReLU: true}
	p1 := n.MaxPool("pool", c1, 2, 2, 0, 0)
	f1 := n.FC("fc", p1, 32, false)
	wf := uint64(lastLaunch(n).Args[1])
	bf := uint64(lastLaunch(n).Args[3])
	ws := n.Mem().ReadFloats(w1, 8*4*9)
	wfs := n.Mem().ReadFloats(wf, 8*4*4*32)
	bfs := n.Mem().ReadFloats(bf, 32)
	runAll(t, n)
	if err := checkConvFwd(n.Mem(), "conv", cs, in, ws, c1); err != nil {
		t.Fatal(err)
	}
	// Host max-pool replay: (ky, kx) order over the padded image.
	cb := n.Mem().ReadFloats(c1.Base, c1.words())
	pb := n.Mem().ReadFloats(p1.Base, p1.words())
	for b := 0; b < 2; b++ {
		for c := 0; c < p1.C; c++ {
			for y := 0; y < p1.H; y++ {
				for x := 0; x < p1.W; x++ {
					want := f32max(hostGet(cb, c1, b, c, 2*y, 2*x), hostGet(cb, c1, b, c, 2*y, 2*x+1))
					want = f32max(want, hostGet(cb, c1, b, c, 2*y+1, 2*x))
					want = f32max(want, hostGet(cb, c1, b, c, 2*y+1, 2*x+1))
					if got := hostGet(pb, p1, b, c, y, x); got != want {
						t.Fatalf("pool[%d][%d][%d][%d] = %v, want %v", b, c, y, x, got, want)
					}
				}
			}
		}
	}
	if err := checkFCFwd(n.Mem(), "fc", p1, wfs, bfs, f1); err != nil {
		t.Fatal(err)
	}
}

// Batch-1 nets must keep their pre-batching program keys and bytes: the
// committed goldens pin them.
func TestBatchOneProgramsUnchanged(t *testing.T) {
	if k := batchKey(1); k != "" {
		t.Fatalf("batchKey(1) = %q, want empty", k)
	}
	n1 := NewNet("a", 3)
	in1 := n1.Input(4, 8, 8, 1)
	n1.Conv("conv", in1, 8, 3, 1, 1, 0, true)
	nb := NewNet("b", 3)
	inb := nb.InputBatch(1, 4, 8, 8, 1)
	nb.Conv("conv", inb, 8, 3, 1, 1, 0, true)
	a, b := n1.App().Launches[0].Program, nb.App().Launches[0].Program
	if len(a.Insts) != len(b.Insts) {
		t.Fatalf("batch-1 conv program differs from pre-batching one: %d vs %d insts",
			len(a.Insts), len(b.Insts))
	}
}

// TestScaleChannelWidthsPinned pins the ch() mapping the committed goldens
// were produced with (see minScaledChannels in net.go). If this test fails,
// every golden that encodes scaled CNN shapes must be regenerated.
func TestScaleChannelWidthsPinned(t *testing.T) {
	def := DefaultScale()
	pinned := map[int]int{16: 8, 64: 16, 128: 32, 256: 64, 512: 128}
	for c, want := range pinned {
		if got := def.ch(c); got != want {
			t.Errorf("DefaultScale.ch(%d) = %d, want %d (golden shape contract)", c, got, want)
		}
	}
	// The floor engages below minScaledChannels*ChannelDiv — and that is
	// exactly why ratio-sensitive widths must use ChExact instead.
	agg := Scale{Input: 32, ChannelDiv: 16}
	if got := agg.ch(64); got != minScaledChannels {
		t.Errorf("aggressive ch(64) = %d, want floor %d", got, minScaledChannels)
	}
}

func TestChExact(t *testing.T) {
	s := Scale{Input: 64, ChannelDiv: 4}
	if got, err := s.ChExact("w", 512); err != nil || got != 128 {
		t.Fatalf("ChExact(512) = %d, %v", got, err)
	}
	if _, err := s.ChExact("w", 66); err == nil {
		t.Fatal("ChExact(66) with div 4: expected error")
	}
	if _, err := (Scale{ChannelDiv: 128}).ChExact("w", 64); err == nil {
		t.Fatal("ChExact(64) with div 128: expected error (would floor to 0)")
	}
	if _, err := (Scale{ChannelDiv: 0}).ChExact("w", 64); err == nil {
		t.Fatal("ChExact with div 0: expected error")
	}
}

func TestScaledTransformer(t *testing.T) {
	cfg, err := ScaledTransformer(2, DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	if cfg.DModel != 128 || cfg.Heads != 4 || cfg.SeqLen != 64 || cfg.headDim() != 32 {
		t.Fatalf("unexpected scaled config %+v", cfg)
	}
	if _, err := ScaledTransformer(2, Scale{Input: 64, ChannelDiv: 3}); err == nil {
		t.Fatal("non-exact channel division: expected error")
	}
}
