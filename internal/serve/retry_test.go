package serve

import (
	"net/http"
	"sync/atomic"
	"testing"
	"time"
)

// TestRetryAfterSeconds pins the header arithmetic: RFC 9110 Retry-After is
// integer seconds, so sub-second backoffs must round UP (truncation told
// clients "retry after 0s" — i.e. immediately — which is the opposite of
// backpressure).
func TestRetryAfterSeconds(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{time.Millisecond, 1},
		{500 * time.Millisecond, 1},
		{time.Second, 1},
		{1001 * time.Millisecond, 2},
		{1500 * time.Millisecond, 2},
		{2 * time.Second, 2},
		{7 * time.Second, 7},
		{-time.Second, 1},
	} {
		if got := retryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

// TestRetryAfterSubSecondNotTruncated is the HTTP-level regression for the
// truncation bug: a server configured with a 500ms backoff must advertise
// Retry-After: 1, never 0.
func TestRetryAfterSubSecondNotTruncated(t *testing.T) {
	release := make(chan struct{})
	var runs atomic.Int64
	ts, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 1,
		RetryAfter: 500 * time.Millisecond, Executor: blockingExec(&runs, release)})
	defer close(release)

	postJob(t, ts.URL, JobRequest{Bench: "mm"})
	for runs.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	postJob(t, ts.URL, JobRequest{Bench: "sc"})
	resp, _ := postJob(t, ts.URL, JobRequest{Bench: "fir"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q for a 500ms backoff, want %q", ra, "1")
	}
}
