// Package timing implements the detailed (cycle-level) execution mode: an
// event-driven model of a GPU's compute units. Each CU hosts several SIMD
// units; each SIMD issues at most one warp instruction per cycle from the
// warps resident in its slots; vector memory flows through the cache/DRAM
// hierarchy; barriers synchronize workgroups. The model drives the
// functional emulator one instruction at a time, so it is execution-driven
// like MGPUSim.
package timing

import (
	"fmt"

	"photon/internal/sim/event"
	"photon/internal/sim/isa"
	"photon/internal/sim/kernel"
)

// Config holds the compute-side timing parameters. Memory parameters live
// in mem.HierarchyConfig.
type Config struct {
	NumCUs           int
	SIMDsPerCU       int
	WarpSlotsPerSIMD int

	// ExecLatency is the time from issuing an instruction of a class until
	// the warp may issue its next instruction (in-order model; inter-warp
	// overlap comes from the SIMD arbitrating between warps).
	ExecLatency [isa.FUClassCount]event.Time
	// IssueOccupancy is how long an instruction of a class occupies the
	// SIMD's issue port (vector ops sweep 64 lanes over a 16-wide unit in 4
	// cycles on GCN).
	IssueOccupancy [isa.FUClassCount]event.Time

	// VectorMemIssueCycles is the warp-visible cost of issuing a vector
	// memory operation; completion is asynchronous until s_waitcnt.
	VectorMemIssueCycles event.Time
	BarrierLatency       event.Time
	// DispatchLatency is the delay between a workgroup landing on a CU and
	// its warps becoming ready; it produces the ramp-up phase visible in
	// the paper's IPC plots.
	DispatchLatency event.Time
}

// WarpSlotsPerCU returns the CU's warp capacity.
func (c Config) WarpSlotsPerCU() int { return c.SIMDsPerCU * c.WarpSlotsPerSIMD }

// ResidentWarpSlots returns how many warps of launch l can be
// architecturally resident at once under this geometry: the device-wide
// slot capacity, capped by the launch's own warp count. The machine sizes
// its structure-of-arrays WarpStore to this at launch time, so small grids
// pay only for the slots they can occupy.
func ResidentWarpSlots(c Config, l *kernel.Launch) int {
	slots := c.NumCUs * c.WarpSlotsPerCU()
	if t := l.TotalWarps(); t < slots {
		slots = t
	}
	if slots < 1 {
		slots = 1
	}
	return slots
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.NumCUs <= 0 || c.SIMDsPerCU <= 0 || c.WarpSlotsPerSIMD <= 0 {
		return fmt.Errorf("timing: CU geometry must be positive (%d CUs, %d SIMDs, %d slots)",
			c.NumCUs, c.SIMDsPerCU, c.WarpSlotsPerSIMD)
	}
	for cl := isa.FUClass(0); cl < isa.FUClassCount; cl++ {
		if c.IssueOccupancy[cl] <= 0 {
			return fmt.Errorf("timing: issue occupancy for %s must be positive", cl)
		}
		if c.ExecLatency[cl] < 0 {
			return fmt.Errorf("timing: exec latency for %s must be non-negative", cl)
		}
	}
	return nil
}

// DefaultCompute returns GCN-flavoured compute timing shared by both Table 1
// configurations (they differ in CU count and memory system).
func DefaultCompute(numCUs int) Config {
	var lat, occ [isa.FUClassCount]event.Time
	lat[isa.FUScalar] = 1
	lat[isa.FUVectorInt] = 4
	lat[isa.FUVectorFP] = 4
	lat[isa.FUVectorSpecial] = 16
	lat[isa.FUScalarMem] = 0 // scalar loads block on the cache round trip
	lat[isa.FUVectorMem] = 0 // asynchronous; see VectorMemIssueCycles
	lat[isa.FULDS] = 8
	lat[isa.FUBranch] = 1
	lat[isa.FUSync] = 1

	occ[isa.FUScalar] = 1
	occ[isa.FUVectorInt] = 4
	occ[isa.FUVectorFP] = 4
	occ[isa.FUVectorSpecial] = 8
	occ[isa.FUScalarMem] = 1
	occ[isa.FUVectorMem] = 4
	occ[isa.FULDS] = 4
	occ[isa.FUBranch] = 1
	occ[isa.FUSync] = 1

	return Config{
		NumCUs:               numCUs,
		SIMDsPerCU:           4,
		WarpSlotsPerSIMD:     10,
		ExecLatency:          lat,
		IssueOccupancy:       occ,
		VectorMemIssueCycles: 4,
		BarrierLatency:       8,
		DispatchLatency:      16,
	}
}
