package emu

import (
	"testing"

	"photon/internal/testutil"
)

// TestSnapshotIntoZeroAlloc pins the verify auditor's capture path: once a
// WarpState has been sized for a warp, re-snapshotting into it must not
// allocate (Snapshot allocated three slices per retired warp).
func TestSnapshotIntoZeroAlloc(t *testing.T) {
	l, _, _, _ := vecAddLaunch(t, 2*64, 2)
	w := NewWarp(l, 0, nil)
	var info StepInfo
	for !w.Done() {
		w.Step(&info)
	}
	var st WarpState
	w.SnapshotInto(&st) // size the buffers
	testutil.MustZeroAllocs(t, "emu.Warp.SnapshotInto", func() {
		w.SnapshotInto(&st)
	})
	if d := st.Diff(ptr(w.Snapshot())); d != "" {
		t.Fatalf("SnapshotInto disagrees with Snapshot:\n%s", d)
	}
}

func ptr[T any](v T) *T { return &v }

// TestWarpStoreSlotRecycling checks that a slot released after warp
// retirement comes back through Alloc with pristine dispatch state: the new
// occupant must be indistinguishable from a warp bound to a never-used slot.
func TestWarpStoreSlotRecycling(t *testing.T) {
	l, _, _, _ := vecAddLaunch(t, 3*64, 3)
	s := NewWarpStore(l, 2)
	if s.Slots() != 2 || s.FreeSlots() != 2 {
		t.Fatalf("fresh store: %d slots, %d free; want 2, 2", s.Slots(), s.FreeSlots())
	}

	slot := s.Alloc()
	w := s.Bind(slot, 0, nil)
	var info StepInfo
	for !w.Done() {
		w.Step(&info)
	}
	s.Release(slot)
	if s.FreeSlots() != 2 {
		t.Fatalf("after release: %d free slots, want 2", s.FreeSlots())
	}

	// LIFO reuse: the recycled slot is handed out first and must carry no
	// trace of its previous occupant.
	got := s.Alloc()
	if got != slot {
		t.Fatalf("Alloc after Release = slot %d, want recycled slot %d", got, slot)
	}
	w2 := s.Bind(got, 1, nil)
	if w2.PC() != 0 || w2.Done() || w2.AtBarrier() || w2.InstCount() != 0 {
		t.Fatalf("recycled slot not reset: pc=%d done=%v barrier=%v insts=%d",
			w2.PC(), w2.Done(), w2.AtBarrier(), w2.InstCount())
	}
	for i, c := range w2.BBCounts() {
		if c != 0 {
			t.Fatalf("recycled slot BBCounts[%d] = %d, want 0", i, c)
		}
	}
	if w2.SReg(0) != 1 || w2.SReg(1) != 0 || w2.SReg(2) != 1 || w2.SReg(3) != 1 {
		t.Fatalf("dispatch conventions wrong on recycled slot: s0..s3 = %d %d %d %d",
			w2.SReg(0), w2.SReg(1), w2.SReg(2), w2.SReg(3))
	}
	for !w2.Done() {
		w2.Step(&info)
	}
	ref := NewWarp(l, 1, nil)
	for !ref.Done() {
		ref.Step(&info)
	}
	if d := ptr(w2.Snapshot()).Diff(ptr(ref.Snapshot())); d != "" {
		t.Fatalf("recycled-slot warp diverged from fresh warp:\n%s", d)
	}
}

// TestWarpStoreGrowthMidLaunch checks that Alloc-triggered slab growth
// preserves the state of warps already in flight: a warp stepped halfway,
// surviving a grow, must finish exactly like an ungrown one.
func TestWarpStoreGrowthMidLaunch(t *testing.T) {
	l, _, _, _ := vecAddLaunch(t, 3*64, 3)
	s := NewWarpStore(l, 1)
	w0 := s.Bind(s.Alloc(), 0, nil)
	var info StepInfo
	for i := 0; i < 5; i++ { // leave warp 0 mid-flight
		w0.Step(&info)
	}
	midPC := w0.PC()

	slot1 := s.Alloc() // free list is empty: this grows the slabs
	if s.Slots() <= 1 {
		t.Fatalf("store did not grow: %d slots", s.Slots())
	}
	if w0.PC() != midPC || w0.InstCount() != 5 {
		t.Fatalf("growth disturbed in-flight warp: pc=%d insts=%d", w0.PC(), w0.InstCount())
	}

	w1 := s.Bind(slot1, 1, nil)
	for !w0.Done() {
		w0.Step(&info)
	}
	for !w1.Done() {
		w1.Step(&info)
	}
	for id, w := range map[int]Warp{0: w0, 1: w1} {
		// Fresh launch state so the reference run replays the same memory.
		rl, _, _, _ := vecAddLaunch(t, 3*64, 3)
		ref := NewWarp(rl, id, nil)
		for !ref.Done() {
			ref.Step(&info)
		}
		if d := ptr(w.Snapshot()).Diff(ptr(ref.Snapshot())); d != "" {
			t.Fatalf("warp %d diverged across mid-launch growth:\n%s", id, d)
		}
	}
}

// TestWarpStoreBytesPerWarp sanity-checks the byte budget the bench report
// and README document.
func TestWarpStoreBytesPerWarp(t *testing.T) {
	l, _, _, _ := vecAddLaunch(t, 64, 1)
	s := NewWarpStore(l, 8)
	want := WarpBytes(l)
	if got := s.BytesPerWarp(); got != want {
		t.Fatalf("BytesPerWarp = %d, WarpBytes = %d; must agree", got, want)
	}
	if want <= 0 {
		t.Fatalf("WarpBytes = %d, want positive", want)
	}
	// Slabs must account for at least slots×bytes-per-warp (the free list
	// and shared address buffer come on top).
	if got := s.ResidentBytes(); got < 8*want {
		t.Fatalf("ResidentBytes = %d < slots*BytesPerWarp = %d", got, 8*want)
	}
}

// TestReplayerMatchesGroupLoop checks the batched fast-forward path against
// the one-workgroup-at-a-time Group loop: same instruction totals, same
// per-warp final state, same memory image.
func TestReplayerMatchesGroupLoop(t *testing.T) {
	const n, groups = 6 * 64, 6
	lr, _, _, outR := vecAddLaunch(t, n, groups)
	lg, _, _, outG := vecAddLaunch(t, n, groups)

	rep := NewReplayer(lr, 2) // force multiple passes
	var repInsts uint64
	repStates := make(map[int]WarpState)
	err := rep.RunRange(0, lr.NumWorkgroups, func(_ int, warps []Warp) {
		for i := range warps {
			repInsts += warps[i].InstCount()
			repStates[warps[i].GlobalID] = warps[i].Snapshot()
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	var grpInsts uint64
	var grp Group
	for wg := 0; wg < lg.NumWorkgroups; wg++ {
		grp.Reset(lg, wg)
		if err := grp.RunFunctional(); err != nil {
			t.Fatal(err)
		}
		for _, w := range grp.Warps {
			grpInsts += w.InstCount()
			st := repStates[w.GlobalID]
			if d := ptr(w.Snapshot()).Diff(&st); d != "" {
				t.Fatalf("warp %d: replayer vs group loop:\n%s", w.GlobalID, d)
			}
		}
	}
	if repInsts != grpInsts {
		t.Fatalf("instruction totals differ: replayer %d, group loop %d", repInsts, grpInsts)
	}
	for i := 0; i < n; i++ {
		a := lr.Memory.Read32(outR + uint64(4*i))
		b := lg.Memory.Read32(outG + uint64(4*i))
		if a != b {
			t.Fatalf("memory image differs at word %d: %#x vs %#x", i, a, b)
		}
	}
}

// TestReplayBatchGroups pins the batch-sizing clamps.
func TestReplayBatchGroups(t *testing.T) {
	l, _, _, _ := vecAddLaunch(t, 4*64, 4)
	if got := ReplayBatchGroups(l, 1); got != 1 {
		t.Fatalf("tiny budget: batch = %d, want 1", got)
	}
	if got := ReplayBatchGroups(l, 1<<30); got != l.NumWorkgroups {
		t.Fatalf("huge budget: batch = %d, want %d", got, l.NumWorkgroups)
	}
	per := WarpBytes(l) * l.WarpsPerGroup
	if got := ReplayBatchGroups(l, 3*per); got != 3 {
		t.Fatalf("3-group budget: batch = %d, want 3", got)
	}
}
