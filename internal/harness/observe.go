package harness

import (
	"context"
	"fmt"
	"io"
	"sort"

	"photon/internal/core"
	"photon/internal/core/bbv"
	"photon/internal/core/detect"
	"photon/internal/harness/engine"
	"photon/internal/sim/emu"
	"photon/internal/sim/event"
	"photon/internal/sim/gpu"
	"photon/internal/sim/timing"
	"photon/internal/stats"
	"photon/internal/workloads"
	"photon/internal/workloads/dnn"
)

// This file regenerates the paper's observation figures (Section 3):
// Figure 1 (IPC over time), Figures 2/3 (basic-block execution time and the
// issue/retired relationship), Figure 4 (the same at warp level), Figure 6
// (GPU-BBV clusters vs kernel IPC for VGG-16 layers), and Figures 8/11
// (basic-block and warp-type distributions: all warps vs a 1% sample).

// obsSizes are moderate problem sizes so the observation runs finish fast.
const (
	obsReLUWarps = 16384
	// MM needs to exceed the R9 Nano's 2560 resident warps, or every warp
	// issues at t~0 and the warp-level issue/retire fit (Figure 4) is
	// degenerate.
	obsMMWarps   = 4096
	obsSPMVWarps = 2048
	obsSCWarps   = 1024
)

func mustBuild(app *workloads.App, err error) *workloads.App {
	if err != nil {
		panic(err)
	}
	return app
}

// Fig1IPCWindow is the IPC sampling window for the Figure 1 series.
const Fig1IPCWindow = 500

// Fig1Data runs the Figure 1 kernels in full detailed mode (one engine job
// per kernel, each on its own GPU instance) and returns their IPC series, in
// presentation order.
func Fig1Data(cfg gpu.Config, parallel int) ([]string, map[string][]float64, error) {
	names := []string{"ReLU", "MM"}
	apps := map[string]*workloads.App{
		"ReLU": mustBuild(workloads.BuildReLU(obsReLUWarps)),
		"MM":   mustBuild(workloads.BuildMM(obsMMWarps)),
	}
	tasks := make([]engine.Task[[]float64], len(names))
	for i, name := range names {
		name := name
		tasks[i] = func(context.Context) ([]float64, error) {
			col := stats.NewIPCCollector(Fig1IPCWindow)
			g := gpu.New(cfg)
			if _, err := g.RunDetailed(apps[name].Launches[0], col, nil); err != nil {
				return nil, err
			}
			return col.Series(), nil
		}
	}
	series, err := engine.Collect(context.Background(), parallel, tasks)
	if err != nil {
		return nil, nil, err
	}
	out := make(map[string][]float64, len(names))
	for i, name := range names {
		out[name] = series[i]
	}
	return names, out, nil
}

// Fig1 prints the IPC series of a stabilizing kernel (ReLU) and a
// fluctuating one (MM), reproducing Observation 1/2.
func Fig1(w io.Writer, cfg gpu.Config, parallel int) error {
	fmt.Fprintf(w, "# Figure 1: IPC over time (window = %d cycles)\n", Fig1IPCWindow)
	names, data, err := Fig1Data(cfg, parallel)
	if err != nil {
		return err
	}
	for _, name := range names {
		series := data[name]
		// The steady-state cv (second half of the run) separates "IPC
		// stabilizes after warm-up" from "IPC keeps fluctuating", which is
		// the distinction Observation 2 draws.
		steady := series[len(series)/2:]
		fmt.Fprintf(w, "%s: %d windows, mean IPC %.2f, cv %.3f, steady-half cv %.3f\n",
			name, len(series), stats.Mean(series), cv(series), cv(steady))
		fmt.Fprintf(w, "  IPC over time: %s\n", sparkline(series, 60))
		printSeries(w, name, series, 24)
	}
	return nil
}

func cv(xs []float64) float64 {
	m := stats.Mean(xs)
	if m == 0 {
		return 0
	}
	v := stats.Variance(xs)
	return v / (m * m)
}

// printSeries prints up to k evenly spaced points of a series.
func printSeries(w io.Writer, name string, xs []float64, k int) {
	if len(xs) == 0 {
		return
	}
	step := len(xs) / k
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(xs); i += step {
		fmt.Fprintf(w, "  %s[%d] = %.2f\n", name, i, xs[i])
	}
}

// blockSampler records (enter, exit) pairs of the dominating basic block
// and (issue, retire) pairs of warps.
type blockSampler struct {
	timing.NopObserver
	targetBlock int
	BlockPairs  [][2]event.Time
	WarpPairs   [][2]event.Time
	cap         int
}

func (s *blockSampler) OnBlockRetired(now event.Time, wp *emu.Warp, blockIdx int, enter, exit event.Time) {
	if blockIdx == s.targetBlock && len(s.BlockPairs) < s.cap {
		s.BlockPairs = append(s.BlockPairs, [2]event.Time{enter, exit})
	}
}

func (s *blockSampler) OnWarpRetired(now event.Time, wp *emu.Warp, issue event.Time) {
	if len(s.WarpPairs) < s.cap {
		s.WarpPairs = append(s.WarpPairs, [2]event.Time{issue, now})
	}
}

// dominantBlock finds the instruction-dominating block index via a small
// functional sample.
func dominantBlock(app *workloads.App) (int, error) {
	prof, err := core.AnalyzeOnline(app.Launches[0], 0.02)
	if err != nil {
		return 0, err
	}
	best, bestV := 0, uint64(0)
	for i, v := range prof.BlockInsts {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best, nil
}

func sampleBlocks(cfg gpu.Config, app *workloads.App) (*blockSampler, error) {
	target, err := dominantBlock(app)
	if err != nil {
		return nil, err
	}
	s := &blockSampler{targetBlock: target, cap: 1 << 20}
	g := gpu.New(cfg)
	if _, err := g.RunDetailed(app.Launches[0], s, nil); err != nil {
		return nil, err
	}
	return s, nil
}

// obsBenchNames is the regular/irregular pair Figures 2-4 analyze.
var obsBenchNames = []string{"MM", "SpMV"}

// sampleObsBenches runs the detailed block/warp sampling for MM and SpMV as
// parallel engine jobs (each builds its own app and GPU), returning the
// samplers in presentation order.
func sampleObsBenches(cfg gpu.Config, parallel int) ([]*blockSampler, error) {
	builds := []func() (*workloads.App, error){
		func() (*workloads.App, error) { return workloads.BuildMM(obsMMWarps) },
		func() (*workloads.App, error) { return workloads.BuildSPMV(obsSPMVWarps) },
	}
	tasks := make([]engine.Task[*blockSampler], len(builds))
	for i, build := range builds {
		build := build
		tasks[i] = func(context.Context) (*blockSampler, error) {
			app, err := build()
			if err != nil {
				return nil, err
			}
			return sampleBlocks(cfg, app)
		}
	}
	return engine.Collect(context.Background(), parallel, tasks)
}

// Fig2 prints the execution-time series and global variance of the
// dominating basic block for MM (regular) and SpMV (irregular).
func Fig2(w io.Writer, cfg gpu.Config, parallel int) error {
	fmt.Fprintln(w, "# Figure 2: dominating basic block execution time over retirement order")
	samplers, err := sampleObsBenches(cfg, parallel)
	if err != nil {
		return err
	}
	for i, s := range samplers {
		name := obsBenchNames[i]
		durs := make([]float64, len(s.BlockPairs))
		for i, p := range s.BlockPairs {
			durs[i] = float64(p[1] - p[0])
		}
		fmt.Fprintf(w, "%s: block %d, %d executions, mean %.1f cycles, variance %.1f (normalized %.3f)\n",
			name, s.targetBlock, len(durs), stats.Mean(durs), stats.Variance(durs), cv(durs))
		fmt.Fprintf(w, "  exec time over retirement order: %s\n", sparkline(durs, 60))
		printSeries(w, name+"-bbtime", durs, 20)
	}
	return nil
}

// Fig3 fits the least-squares line of the dominating block's issue/retired
// relationship (slope should approach 1 once contention stabilizes).
func Fig3(w io.Writer, cfg gpu.Config, parallel int) error {
	fmt.Fprintln(w, "# Figure 3: dominating basic block issue vs retired time (least-squares)")
	samplers, err := sampleObsBenches(cfg, parallel)
	if err != nil {
		return err
	}
	for i, s := range samplers {
		a, b := fitPairs(s.BlockPairs)
		aTail, _ := fitTail(s.BlockPairs, 2048)
		fmt.Fprintf(w, "%s: retired = %.4f * issue + %.1f over %d samples; tail-window slope %.4f\n",
			obsBenchNames[i], a, b, len(s.BlockPairs), aTail)
	}
	return nil
}

// Fig4 does the same at warp level: regular applications' slope approaches
// 1, irregular ones deviate.
func Fig4(w io.Writer, cfg gpu.Config, parallel int) error {
	fmt.Fprintln(w, "# Figure 4: warp issue vs retired time (least-squares)")
	samplers, err := sampleObsBenches(cfg, parallel)
	if err != nil {
		return err
	}
	for i, s := range samplers {
		a, b := fitPairs(s.WarpPairs)
		aTail, _ := fitTail(s.WarpPairs, 1024)
		fmt.Fprintf(w, "%s: retired = %.4f * issue + %.1f over %d warps; tail-window slope %.4f\n",
			obsBenchNames[i], a, b, len(s.WarpPairs), aTail)
	}
	return nil
}

func fitPairs(pairs [][2]event.Time) (a, b float64) {
	if len(pairs) < 2 {
		return 0, 0
	}
	d := detect.New(len(pairs), 0.03)
	for _, p := range pairs {
		d.Add(float64(p[0]), float64(p[1]))
	}
	a, _ = d.Slope()
	// Intercept from means: b = mean(y) - a*mean(x).
	var sx, sy float64
	for _, p := range pairs {
		sx += float64(p[0])
		sy += float64(p[1])
	}
	n := float64(len(pairs))
	return a, sy/n - a*sx/n
}

func fitTail(pairs [][2]event.Time, window int) (a float64, ok bool) {
	if len(pairs) < window {
		window = len(pairs)
	}
	if window < 2 {
		return 0, false
	}
	return fitPairsSlope(pairs[len(pairs)-window:])
}

func fitPairsSlope(pairs [][2]event.Time) (float64, bool) {
	d := detect.New(len(pairs), 0.03)
	for _, p := range pairs {
		d.Add(float64(p[0]), float64(p[1]))
	}
	return d.Slope()
}

// Fig6 clusters the VGG-16 layer kernels by GPU BBV and prints each
// cluster's kernels with their full-detailed IPC: kernels in one cluster
// should have similar IPC (Observation 5).
func Fig6(w io.Writer, cfg gpu.Config, sc dnn.Scale) error {
	fmt.Fprintln(w, "# Figure 6: VGG-16 kernels clustered by GPU BBV vs their IPC")
	app, err := dnn.BuildVGG(16, sc)
	if err != nil {
		return err
	}
	type kinfo struct {
		name string
		g    bbv.GPUBBV
		ipc  float64
	}
	// The layer kernels must run serially: they share the app's memory
	// image, and layer k+1 reads layer k's outputs (both the functional
	// analysis and the detailed run execute stores). This loop is therefore
	// a chain, not a fan-out — the parallel axis here would be whole apps.
	var infos []kinfo
	g := gpu.New(cfg)
	for _, l := range app.Launches {
		prof, err := core.AnalyzeOnline(l, 0.01)
		if err != nil {
			return err
		}
		res, err := (gpu.FullRunner{}).RunKernel(g, l)
		if err != nil {
			return err
		}
		infos = append(infos, kinfo{name: l.Name, g: prof.GPU, ipc: res.IPC()})
	}
	// Single-linkage clustering at the kernel-sampling distance threshold.
	const threshold = 0.05
	cluster := make([]int, len(infos))
	for i := range cluster {
		cluster[i] = -1
	}
	next := 0
	for i := range infos {
		if cluster[i] >= 0 {
			continue
		}
		cluster[i] = next
		for j := i + 1; j < len(infos); j++ {
			if cluster[j] < 0 && bbv.Distance(infos[i].g, infos[j].g) < threshold {
				cluster[j] = next
			}
		}
		next++
	}
	order := make([]int, len(infos))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return cluster[order[a]] < cluster[order[b]] })
	fmt.Fprintf(w, "%-8s %-10s %8s\n", "cluster", "kernel", "IPC")
	for _, i := range order {
		fmt.Fprintf(w, "%-8d %-10s %8.2f\n", cluster[i], infos[i].name, infos[i].ipc)
	}
	return nil
}

// Fig8 compares the basic-block instruction distribution of all warps vs a
// 1% sample for SC (regular) and SpMV (irregular).
func Fig8(w io.Writer, parallel int) error {
	fmt.Fprintln(w, "# Figure 8: basic-block distribution — all warps vs 1% sample")
	return distributionReport(w, parallel, func(app *workloads.App, fraction float64) (map[string]float64, error) {
		prof, err := core.AnalyzeOnline(app.Launches[0], fraction)
		if err != nil {
			return nil, err
		}
		out := map[string]float64{}
		shares := prof.BlockShare()
		for i, s := range shares {
			if s > 0 {
				out[app.Launches[0].Program.Blocks[i].Key().String()] = s
			}
		}
		return out, nil
	})
}

// Fig11 compares warp-type distributions of all warps vs a 1% sample.
func Fig11(w io.Writer, parallel int) error {
	fmt.Fprintln(w, "# Figure 11: warp-type distribution — all warps vs 1% sample")
	return distributionReport(w, parallel, func(app *workloads.App, fraction float64) (map[string]float64, error) {
		prof, err := core.AnalyzeOnline(app.Launches[0], fraction)
		if err != nil {
			return nil, err
		}
		out := map[string]float64{}
		for id, share := range prof.WarpTypeShare() {
			out[fmt.Sprintf("type-%x", id&0xffff)] = share
		}
		return out, nil
	})
}

func distributionReport(w io.Writer, parallel int,
	dist func(app *workloads.App, fraction float64) (map[string]float64, error)) error {
	benches := []struct {
		name  string
		build func() (*workloads.App, error)
	}{
		{"SC", func() (*workloads.App, error) { return workloads.BuildSC(obsSCWarps) }},
		{"SpMV", func() (*workloads.App, error) { return workloads.BuildSPMV(obsSPMVWarps) }},
	}
	// One job per (bench, fraction). Each job builds a private app: the
	// functional analysis executes stores into the app's memory image, so
	// two jobs must never share one.
	fractions := []float64{1.0, 0.01}
	var tasks []engine.Task[map[string]float64]
	for _, bench := range benches {
		build := bench.build
		for _, fraction := range fractions {
			fraction := fraction
			tasks = append(tasks, func(context.Context) (map[string]float64, error) {
				app, err := build()
				if err != nil {
					return nil, err
				}
				return dist(app, fraction)
			})
		}
	}
	dists, err := engine.Collect(context.Background(), parallel, tasks)
	if err != nil {
		return err
	}
	for bi, bench := range benches {
		all, sample := dists[bi*len(fractions)], dists[bi*len(fractions)+1]
		fmt.Fprintf(w, "%s: %d entries (all) vs %d entries (1%% sample); L1 divergence %.4f\n",
			bench.name, len(all), len(sample), l1Divergence(all, sample))
		keys := make([]string, 0, len(all))
		for k := range all {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return all[keys[i]] > all[keys[j]] })
		if len(keys) > 8 {
			keys = keys[:8]
		}
		for _, k := range keys {
			fmt.Fprintf(w, "  %-12s all=%.4f sample=%.4f\n", k, all[k], sample[k])
		}
	}
	return nil
}

func l1Divergence(a, b map[string]float64) float64 {
	seen := map[string]bool{}
	d := 0.0
	for k, v := range a {
		d += abs(v - b[k])
		seen[k] = true
	}
	for k, v := range b {
		if !seen[k] {
			d += v
		}
	}
	return d
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
