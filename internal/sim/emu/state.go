package emu

import (
	"fmt"
	"strings"
)

// WarpState is a deep copy of a warp's final architectural state, captured
// with Snapshot. The differential checker in internal/verify runs the same
// launch through the functional engine and the timing model and compares
// the WarpState of every retired warp; any mismatch is a simulator bug.
type WarpState struct {
	GlobalID  int
	PC        int
	SCC       bool
	Exec      uint64
	VCC       uint64
	SGPR      []uint32
	VGPR      []uint32 // [reg*64 + lane]
	Masks     [8]uint64
	InstCount uint64
	BBCounts  []uint32
}

// Snapshot deep-copies the warp's architectural state. The pooled runtime
// recycles Warp objects the moment they retire, so any observer that wants
// final state must copy it during the retirement callback — this is that
// copy.
func (w *Warp) Snapshot() WarpState {
	s := WarpState{
		GlobalID:  w.GlobalID,
		PC:        w.PC,
		SCC:       w.SCC,
		Exec:      w.Exec,
		VCC:       w.VCC,
		Masks:     w.masks,
		InstCount: w.InstCount,
	}
	s.SGPR = append(s.SGPR, w.sgpr...)
	s.VGPR = append(s.VGPR, w.vgpr...)
	s.BBCounts = append(s.BBCounts, w.BBCounts...)
	return s
}

// Diff describes every field where s and o disagree, one difference per
// line, or returns "" when the states are architecturally identical.
// Registers are compared over the shorter of the two files so that engines
// which size register backing differently (but agree on contents) still
// compare equal; a length mismatch itself is reported.
func (s *WarpState) Diff(o *WarpState) string {
	var b strings.Builder
	line := func(format string, args ...any) {
		fmt.Fprintf(&b, format+"\n", args...)
	}
	if s.GlobalID != o.GlobalID {
		line("globalID: %d vs %d", s.GlobalID, o.GlobalID)
	}
	if s.PC != o.PC {
		line("pc: %d vs %d", s.PC, o.PC)
	}
	if s.SCC != o.SCC {
		line("scc: %v vs %v", s.SCC, o.SCC)
	}
	if s.Exec != o.Exec {
		line("exec: %#x vs %#x", s.Exec, o.Exec)
	}
	if s.VCC != o.VCC {
		line("vcc: %#x vs %#x", s.VCC, o.VCC)
	}
	for i := range s.Masks {
		if s.Masks[i] != o.Masks[i] {
			line("mask[%d]: %#x vs %#x", i, s.Masks[i], o.Masks[i])
		}
	}
	if len(s.SGPR) != len(o.SGPR) {
		line("sgpr count: %d vs %d", len(s.SGPR), len(o.SGPR))
	}
	for i := 0; i < min(len(s.SGPR), len(o.SGPR)); i++ {
		if s.SGPR[i] != o.SGPR[i] {
			line("s%d: %#x vs %#x", i, s.SGPR[i], o.SGPR[i])
		}
	}
	if len(s.VGPR) != len(o.VGPR) {
		line("vgpr count: %d vs %d", len(s.VGPR), len(o.VGPR))
	}
	for i := 0; i < min(len(s.VGPR), len(o.VGPR)); i++ {
		if s.VGPR[i] != o.VGPR[i] {
			line("v%d.lane%d: %#x vs %#x", i/64, i%64, s.VGPR[i], o.VGPR[i])
		}
	}
	if s.InstCount != o.InstCount {
		line("instCount: %d vs %d", s.InstCount, o.InstCount)
	}
	if len(s.BBCounts) != len(o.BBCounts) {
		line("bbCounts length: %d vs %d", len(s.BBCounts), len(o.BBCounts))
	}
	for i := 0; i < min(len(s.BBCounts), len(o.BBCounts)); i++ {
		if s.BBCounts[i] != o.BBCounts[i] {
			line("bbCounts[%d]: %d vs %d", i, s.BBCounts[i], o.BBCounts[i])
		}
	}
	return b.String()
}
