package workloads

import (
	"fmt"

	"photon/internal/sim/isa"
	"photon/internal/sim/kernel"
	"photon/internal/sim/mem"
)

// csr is a synthetic sparse matrix in compressed-sparse-row form. Row
// lengths follow a skewed distribution (many short rows, a tail of long
// ones), which is what makes SpMV the paper's canonical irregular workload:
// warps have divergent inner-loop trip counts and gather accesses.
type csr struct {
	rows    int
	cols    int
	rowPtr  []uint32
	colIdx  []uint32
	values  []float32
	maxilen int
}

func makeCSR(rows, cols int, seed uint64) *csr {
	rng := newRNG(seed)
	c := &csr{rows: rows, cols: cols, rowPtr: make([]uint32, rows+1)}
	for r := 0; r < rows; r++ {
		var rowLen int
		if rng.intn(100) < 80 {
			rowLen = 1 + rng.intn(8) // short row
		} else {
			rowLen = 8 + rng.intn(56) // long tail, up to 64
		}
		if rowLen > c.maxilen {
			c.maxilen = rowLen
		}
		for k := 0; k < rowLen; k++ {
			c.colIdx = append(c.colIdx, uint32(rng.intn(cols)))
			c.values = append(c.values, rng.float32n()-0.5)
		}
		c.rowPtr[r+1] = uint32(len(c.colIdx))
	}
	return c
}

// spmvProgram computes y = A*x over CSR, one thread per row, with a
// lane-divergent inner loop (the loop runs while any lane still has
// elements; finished lanes are masked off).
// Args: s8=rowPtr, s9=colIdx, s10=vals, s11=x, s12=y, s13=numRows.
func spmvProgram() *isa.Program {
	b := isa.NewBuilder("spmv")
	emitTID(b, 1, 4)
	emitBoundsGuard(b, 1, 13, 0, "done")
	b.I(isa.OpVLShl, isa.V(2), isa.V(1), isa.Imm(2))
	b.I(isa.OpVAdd, isa.V(3), isa.V(2), isa.S(8))
	b.Load(isa.OpVLoad, isa.V(4), isa.V(3), 0) // k = rowPtr[tid]
	b.Load(isa.OpVLoad, isa.V(5), isa.V(3), 4) // end = rowPtr[tid+1]
	b.Waitcnt(0)
	b.I(isa.OpVMov, isa.V(6), f32imm(0)) // acc
	b.Label("loop")
	b.I(isa.OpVCmpLt, isa.Operand{}, isa.V(4), isa.V(5))
	b.I(isa.OpSAndSaveExec, isa.Mask(1))
	b.Br(isa.OpCBranchExecZ, "exit")
	b.I(isa.OpVLShl, isa.V(7), isa.V(4), isa.Imm(2))
	b.I(isa.OpVAdd, isa.V(8), isa.V(7), isa.S(9))
	b.Load(isa.OpVLoad, isa.V(9), isa.V(8), 0) // col
	b.Waitcnt(0)
	b.I(isa.OpVLShl, isa.V(10), isa.V(9), isa.Imm(2))
	b.I(isa.OpVAdd, isa.V(10), isa.V(10), isa.S(11))
	b.Load(isa.OpVLoad, isa.V(11), isa.V(10), 0) // x[col] gather
	b.I(isa.OpVAdd, isa.V(12), isa.V(7), isa.S(10))
	b.Load(isa.OpVLoad, isa.V(13), isa.V(12), 0) // val
	b.Waitcnt(0)
	b.I(isa.OpVFFma, isa.V(6), isa.V(11), isa.V(13), isa.V(6))
	b.I(isa.OpVAdd, isa.V(4), isa.V(4), isa.Imm(1))
	b.I(isa.OpSSetExec, isa.Operand{}, isa.Mask(1))
	b.Br(isa.OpSBranch, "loop")
	b.Label("exit")
	b.I(isa.OpSSetExec, isa.Operand{}, isa.Mask(1))
	b.I(isa.OpVAdd, isa.V(14), isa.V(2), isa.S(12))
	b.Store(isa.OpVStore, isa.V(14), isa.V(6), 0)
	emitEpilogue(b, 0, "done")
	return b.MustBuild()
}

// BuildSPMV constructs the SpMV benchmark (SHOC) at the given problem size
// in warps; the matrix has warps*64 rows and as many columns.
func BuildSPMV(warps int) (*App, error) {
	if warps <= 0 {
		return nil, fmt.Errorf("spmv: warps must be positive")
	}
	m := mem.NewFlat()
	rows := warps * kernel.WavefrontSize
	c := makeCSR(rows, rows, 0x59317)

	rowPtr := m.Alloc(uint64(4 * (rows + 1)))
	colIdx := m.Alloc(uint64(4 * len(c.colIdx)))
	vals := m.Alloc(uint64(4 * len(c.values)))
	x := m.Alloc(uint64(4 * rows))
	y := m.Alloc(uint64(4 * rows))

	m.WriteWords(rowPtr, c.rowPtr)
	m.WriteWords(colIdx, c.colIdx)
	m.WriteFloats(vals, c.values)
	rng := newRNG(0x77)
	hostX := make([]float32, rows)
	for i := range hostX {
		hostX[i] = rng.float32n()
	}
	m.WriteFloats(x, hostX)

	l := &kernel.Launch{
		Name:          "spmv",
		Program:       spmvProgram(),
		Memory:        m,
		NumWorkgroups: warps,
		WarpsPerGroup: 1,
		Args: []uint32{
			uint32(rowPtr), uint32(colIdx), uint32(vals),
			uint32(x), uint32(y), uint32(rows),
		},
	}
	app := &App{Name: "SPMV", Mem: m, Launches: []*kernel.Launch{l}}
	app.Check = func() error {
		for r := 0; r < rows; r += max(1, rows/173) {
			var want float32
			for k := c.rowPtr[r]; k < c.rowPtr[r+1]; k++ {
				want = hostX[c.colIdx[k]]*c.values[k] + want
			}
			if got := m.ReadF32(y + uint64(4*r)); got != want {
				return fmt.Errorf("spmv: y[%d] = %v, want %v", r, got, want)
			}
		}
		return nil
	}
	return app, nil
}
