package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for a registry
// Snapshot. The JSON artifact stays the canonical schema; this writer
// exists so a stock Prometheus/VictoriaMetrics scraper can consume
// /metrics directly. Counters map to TYPE counter, gauges to TYPE gauge,
// histograms to TYPE histogram with the cumulative _bucket/_sum/_count
// triple the format requires (Snapshot buckets are already cumulative).

// PromContentType is the Content-Type of the exposition output.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteProm writes s in Prometheus text exposition format. Output is
// deterministic: Snapshot is sorted, and labels render in sorted key order.
func WriteProm(w io.Writer, s Snapshot) error {
	// Group by metric name so each # TYPE header appears once even when a
	// name has many label sets. Snapshot order is already name-sorted.
	lastType := make(map[string]bool)
	typeLine := func(name, typ string) string {
		if lastType[name] {
			return ""
		}
		lastType[name] = true
		return fmt.Sprintf("# TYPE %s %s\n", promName(name), typ)
	}

	var b strings.Builder
	for _, c := range s.Counters {
		b.WriteString(typeLine(c.Name, "counter"))
		fmt.Fprintf(&b, "%s%s %s\n", promName(c.Name), promLabels(c.Labels, "", 0), formatUint(c.Value))
	}
	for _, g := range s.Gauges {
		b.WriteString(typeLine(g.Name, "gauge"))
		fmt.Fprintf(&b, "%s%s %s\n", promName(g.Name), promLabels(g.Labels, "", 0), formatFloat(g.Value))
	}
	for _, h := range s.Histograms {
		b.WriteString(typeLine(h.Name, "histogram"))
		name := promName(h.Name)
		for _, bk := range h.Buckets {
			fmt.Fprintf(&b, "%s_bucket%s %s\n",
				name, promLabels(h.Labels, "le", float64(bk.LE)), formatUint(bk.Count))
		}
		fmt.Fprintf(&b, "%s_sum%s %s\n", name, promLabels(h.Labels, "", 0), formatFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count%s %s\n", name, promLabels(h.Labels, "", 0), formatUint(h.Count))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// promName maps a registry metric name to a legal Prometheus name:
// [a-zA-Z_:][a-zA-Z0-9_:]*, everything else becomes '_'.
func promName(name string) string {
	if name == "" {
		return "_"
	}
	var b []byte
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			c = '_'
		}
		b = append(b, c)
	}
	return string(b)
}

// promLabels renders a label set (plus an optional le bound for histogram
// buckets) as {k="v",...}, keys sorted, values escaped per the format
// (backslash, double-quote, newline).
func promLabels(labels map[string]string, leKey string, le float64) string {
	if len(labels) == 0 && leKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, k := range keys {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(promName(k))
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	if leKey != "" {
		if !first {
			b.WriteByte(',')
		}
		b.WriteString(leKey)
		b.WriteString(`="`)
		if math.IsInf(le, +1) {
			b.WriteString("+Inf")
		} else {
			b.WriteString(formatFloat(le))
		}
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
