package event

import (
	"math/rand"
	"testing"

	"photon/internal/testutil"
)

// scheduler is the API surface shared by Engine and RefEngine, so one
// scenario can drive both.
type scheduler interface {
	Schedule(at Time, h Handler)
	After(delay Time, h Handler)
	Run() Time
	RunUntil(deadline Time) bool
	Step() bool
	Now() Time
	Pending() int
	Processed() uint64
}

var (
	_ scheduler = (*Engine)(nil)
	_ scheduler = (*RefEngine)(nil)
)

// fireRecord captures one event execution.
type fireRecord struct {
	id  int
	now Time
}

// runScenario drives e with a randomized schedule derived from seed:
// initial events across near (wheel) and far (heap) horizons, where some
// events re-schedule children relative to their own fire time — including
// zero-delay and past (clamped) times. Both engines fire in identical
// order, so the child cascade evolves identically, and the full fire log is
// comparable record by record.
func runScenario(e scheduler, seed int64) []fireRecord {
	rng := rand.New(rand.NewSource(seed))
	var log []fireRecord
	nextID := 0
	var spawn func(depth int) Handler
	spawn = func(depth int) Handler {
		id := nextID
		nextID++
		return func(now Time) {
			log = append(log, fireRecord{id: id, now: now})
			if depth >= 3 {
				return
			}
			for k := rng.Intn(3); k > 0; k-- {
				// Mix wheel-range offsets, far offsets and past times (the
				// -64 offset exercises the clamp path).
				off := Time(rng.Intn(600)) - 64
				e.Schedule(now+off, spawn(depth+1))
			}
		}
	}
	for i := 0; i < 400; i++ {
		e.Schedule(Time(rng.Intn(2000)), spawn(0))
	}
	e.Run()
	return log
}

// TestDifferentialVsRefEngine drives the wheel+4-ary-heap engine and the
// container/heap reference with identical randomized schedules and demands
// identical fire order — the byte-identical guarantee the simulator's
// determinism rests on.
func TestDifferentialVsRefEngine(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		got := runScenario(New(), seed)
		want := runScenario(NewRef(), seed)
		if len(got) != len(want) {
			t.Fatalf("seed %d: fired %d events, reference fired %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: divergence at event %d: got id=%d@%d, reference id=%d@%d",
					seed, i, got[i].id, got[i].now, want[i].id, want[i].now)
			}
		}
	}
}

// TestDifferentialStepAndRunUntil checks the single-step and bounded-run
// paths against the reference, interleaving the three drain modes.
func TestDifferentialStepAndRunUntil(t *testing.T) {
	build := func(e scheduler) *[]fireRecord {
		log := &[]fireRecord{}
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 300; i++ {
			id := i
			e.Schedule(Time(rng.Intn(1500)), func(now Time) {
				*log = append(*log, fireRecord{id: id, now: now})
			})
		}
		return log
	}
	a, b := New(), NewRef()
	la, lb := build(a), build(b)
	for _, deadline := range []Time{10, 250, 256, 700, 699} {
		ra, rb := a.RunUntil(deadline), b.RunUntil(deadline)
		if ra != rb || a.Now() != b.Now() || a.Pending() != b.Pending() {
			t.Fatalf("RunUntil(%d): engine (drained=%v now=%d pending=%d) != reference (drained=%v now=%d pending=%d)",
				deadline, ra, a.Now(), a.Pending(), rb, b.Now(), b.Pending())
		}
	}
	for a.Step() && b.Step() {
	}
	if a.Pending() != 0 || b.Pending() != 0 {
		t.Fatalf("pending after drain: engine %d, reference %d", a.Pending(), b.Pending())
	}
	if a.Processed() != b.Processed() {
		t.Fatalf("processed: engine %d, reference %d", a.Processed(), b.Processed())
	}
	if len(*la) != len(*lb) {
		t.Fatalf("fired %d vs reference %d", len(*la), len(*lb))
	}
	for i := range *la {
		if (*la)[i] != (*lb)[i] {
			t.Fatalf("divergence at %d: %+v vs %+v", i, (*la)[i], (*lb)[i])
		}
	}
}

// TestRunUntilBoundary pins RunUntil's contract: events scheduled exactly
// at the deadline fire, the clock never exceeds the deadline, and events
// clamped into the current instant keep (at, seq) FIFO order.
func TestRunUntilBoundary(t *testing.T) {
	e := New()
	var fired []int
	e.Schedule(5, func(Time) { fired = append(fired, 5) })
	e.Schedule(10, func(Time) { fired = append(fired, 10) }) // exactly at deadline
	e.Schedule(11, func(Time) { fired = append(fired, 11) })
	if e.RunUntil(10) {
		t.Fatal("RunUntil(10) reported drained with an event at t=11 pending")
	}
	if got := []int{5, 10}; len(fired) != 2 || fired[0] != got[0] || fired[1] != got[1] {
		t.Fatalf("fired %v, want [5 10] (deadline event must fire)", fired)
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %d after RunUntil(10), want exactly 10", e.Now())
	}

	// Clamped past-scheduling at the deadline instant: both land at now=10
	// and must fire in scheduling order, before the t=11 event.
	e.Schedule(3, func(now Time) {
		if now != 10 {
			t.Errorf("clamped event fired at %d, want 10", now)
		}
		fired = append(fired, -1)
	})
	e.Schedule(0, func(Time) { fired = append(fired, -2) })
	if e.RunUntil(10) {
		t.Fatal("second RunUntil(10) reported drained")
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %d, want 10 (never beyond the deadline)", e.Now())
	}
	want := []int{5, 10, -1, -2}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v (clamped events must keep (at, seq) order)", fired, want)
		}
	}

	if !e.RunUntil(11) {
		t.Fatal("RunUntil(11) did not drain")
	}
	if fired[len(fired)-1] != 11 {
		t.Fatalf("t=11 event did not fire last: %v", fired)
	}
	// Draining leaves the clock at the last event, not the deadline.
	if e.Now() != 11 {
		t.Fatalf("Now() = %d after drain, want 11", e.Now())
	}
	// A drained engine reports true without moving the clock.
	if !e.RunUntil(1000) || e.Now() != 11 {
		t.Fatalf("empty RunUntil moved the clock to %d", e.Now())
	}
}

// TestScheduleZeroAlloc pins the zero-allocation steady state: a warmed-up
// engine schedules and fires wheel and heap events without touching the
// allocator.
func TestScheduleZeroAlloc(t *testing.T) {
	e := New()
	var fired int
	h := Handler(func(Time) { fired++ })
	// Warm every wheel bucket (the clock rotates through all of them as it
	// advances) and the heap's backing array.
	for d := Time(0); d < wheelSize; d++ {
		for k := 0; k < 8; k++ {
			e.After(d, h)
		}
	}
	for i := 0; i < 64; i++ {
		e.After(wheelSize+Time(i), h)
	}
	e.Run()

	testutil.MustZeroAllocs(t, "Engine.Schedule+Run (wheel)", func() {
		for i := 0; i < 16; i++ {
			e.After(Time(i%5), h)
		}
		e.Run()
	})
	testutil.MustZeroAllocs(t, "Engine.Schedule+Run (heap)", func() {
		for i := 0; i < 16; i++ {
			e.After(wheelSize+Time(i%31), h)
		}
		e.Run()
	})
}
