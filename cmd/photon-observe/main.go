// Command photon-observe regenerates the paper's observation figures
// (Section 3): IPC-over-time behavior (Figure 1), basic-block timing
// stability (Figures 2 and 3), warp timing (Figure 4), GPU-BBV clustering of
// VGG-16 kernels against their IPC (Figure 6), and the all-vs-sampled
// distribution comparisons (Figures 8 and 11).
//
//	photon-observe -exp fig3
//	photon-observe -exp all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"photon/internal/buildinfo"
	"photon/internal/harness"
	"photon/internal/obs"
	"photon/internal/sim/gpu"
	"photon/internal/viz"
	"photon/internal/workloads/dnn"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is main with testable plumbing; all failure paths — including
// the deferred profile writes — land in the exit code. 0 = success,
// 1 = runtime failure, 2 = usage.
func realMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("photon-observe", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp        = fs.String("exp", "all", "figure: fig1|fig2|fig3|fig4|fig6|fig8|fig11|all")
		arch       = fs.String("arch", "r9nano", "GPU configuration: r9nano or mi100")
		svgDir     = fs.String("svg", "", "also render figures as SVG into this directory (fig1)")
		parallel   = fs.Int("parallel", 0, "worker count for per-figure jobs (<= 0: one per CPU)")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file at exit")
		version    = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.Print("photon-observe"))
		return 0
	}

	stopProfiles, err := obs.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(stderr, "photon-observe: %v\n", err)
		return 1
	}
	code := runFigures(*exp, *arch, *svgDir, *parallel, stdout, stderr)
	if err := stopProfiles(); err != nil {
		fmt.Fprintf(stderr, "photon-observe: profiles: %v\n", err)
		if code == 0 {
			code = 1
		}
	}
	return code
}

func runFigures(exp, arch, svgDir string, parallel int, stdout, stderr io.Writer) int {
	cfg, ok := gpu.Configs(arch)
	if !ok {
		fmt.Fprintf(stderr, "photon-observe: unknown arch %q\n", arch)
		return 2
	}
	all := exp == "all"
	figures := []struct {
		name string
		run  func() error
	}{
		{"fig1", func() error {
			if err := harness.Fig1(stdout, cfg, parallel); err != nil {
				return err
			}
			if svgDir != "" {
				return renderFig1SVG(stdout, svgDir, cfg, parallel)
			}
			return nil
		}},
		{"fig2", func() error { return harness.Fig2(stdout, cfg, parallel) }},
		{"fig3", func() error { return harness.Fig3(stdout, cfg, parallel) }},
		{"fig4", func() error { return harness.Fig4(stdout, cfg, parallel) }},
		// A reduced DNN scale keeps the full-detailed VGG pass short.
		{"fig6", func() error { return harness.Fig6(stdout, cfg, dnn.Scale{Input: 32, ChannelDiv: 8}) }},
		{"fig8", func() error { return harness.Fig8(stdout, parallel) }},
		{"fig11", func() error { return harness.Fig11(stdout, parallel) }},
	}
	known := false
	for _, f := range figures {
		if !all && exp != f.name {
			continue
		}
		known = true
		if err := f.run(); err != nil {
			fmt.Fprintf(stderr, "photon-observe: %v\n", err)
			return 1
		}
	}
	if !known {
		fmt.Fprintf(stderr, "photon-observe: unknown experiment %q\n", exp)
		return 2
	}
	return 0
}

// renderFig1SVG writes the Figure 1 IPC-over-time line chart.
func renderFig1SVG(stdout io.Writer, dir string, cfg gpu.Config, parallel int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	names, data, err := harness.Fig1Data(cfg, parallel)
	if err != nil {
		return err
	}
	var series []viz.Series
	for _, n := range names {
		series = append(series, viz.Series{Name: n, Values: data[n]})
	}
	svg := viz.LineChart("Figure 1: IPC over time", "cycles", "IPC",
		float64(harness.Fig1IPCWindow), series)
	path := filepath.Join(dir, "fig1_ipc.svg")
	if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", path)
	return nil
}
