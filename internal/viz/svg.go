// Package viz renders the experiment results as standalone SVG documents —
// line charts for time series (the paper's Figure 1-style IPC plots) and
// grouped bar charts for per-benchmark comparisons (the Figure 13-style
// error/speedup panels) — using nothing but the standard library.
package viz

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line in a line chart.
type Series struct {
	Name   string
	Values []float64
}

// palette cycles through stroke/fill colors.
var palette = []string{"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b"}

const (
	chartW, chartH         = 720, 300
	marginL, marginR       = 60, 20
	marginT, marginB       = 30, 40
	plotW                  = chartW - marginL - marginR
	plotH                  = chartH - marginT - marginB
	axisStyle              = `stroke="#444" stroke-width="1"`
	labelStyle             = `font-family="sans-serif" font-size="11" fill="#333"`
	titleStyle             = `font-family="sans-serif" font-size="14" fill="#111"`
	gridStyle              = `stroke="#ddd" stroke-width="0.5"`
	maxBarGroupsPerChart   = 40
	defaultTicks           = 5
	legendSwatch, legendDY = 10, 16
)

func maxOf(vals []float64) float64 {
	m := math.Inf(-1)
	for _, v := range vals {
		if v > m {
			m = v
		}
	}
	return m
}

// LineChart renders one or more series as an SVG line chart. The x axis is
// the sample index scaled by xScale (e.g. the IPC window width in cycles).
func LineChart(title, xLabel, yLabel string, xScale float64, series []Series) string {
	var sb strings.Builder
	header(&sb, title)
	yMax := 0.0
	xMax := 0
	for _, s := range series {
		if m := maxOf(s.Values); m > yMax {
			yMax = m
		}
		if len(s.Values) > xMax {
			xMax = len(s.Values)
		}
	}
	if yMax <= 0 {
		yMax = 1
	}
	axes(&sb, xLabel, yLabel, float64(xMax)*xScale, yMax)
	for i, s := range series {
		color := palette[i%len(palette)]
		var pts []string
		for j, v := range s.Values {
			x := marginL + float64(j)/math.Max(float64(xMax-1), 1)*plotW
			y := marginT + plotH - v/yMax*plotH
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x, y))
		}
		fmt.Fprintf(&sb, `<polyline fill="none" stroke="%s" stroke-width="1.5" points="%s"/>`+"\n",
			color, strings.Join(pts, " "))
		fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"/>`+"\n",
			chartW-140, marginT+i*legendDY, legendSwatch, legendSwatch, color)
		fmt.Fprintf(&sb, `<text x="%d" y="%d" %s>%s</text>`+"\n",
			chartW-140+legendSwatch+4, marginT+i*legendDY+9, labelStyle, escape(s.Name))
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

// BarGroup is one x-axis position of a grouped bar chart.
type BarGroup struct {
	Label string
	// Values are one bar per series, aligned with the chart's SeriesNames.
	Values []float64
}

// BarChart renders a grouped bar chart (e.g. error% per benchmark per
// runner).
func BarChart(title, yLabel string, seriesNames []string, groups []BarGroup) string {
	if len(groups) > maxBarGroupsPerChart {
		groups = groups[:maxBarGroupsPerChart]
	}
	var sb strings.Builder
	header(&sb, title)
	yMax := 0.0
	for _, g := range groups {
		if m := maxOf(g.Values); m > yMax {
			yMax = m
		}
	}
	if yMax <= 0 {
		yMax = 1
	}
	axes(&sb, "", yLabel, 0, yMax)
	groupW := float64(plotW) / math.Max(float64(len(groups)), 1)
	barW := groupW / float64(len(seriesNames)+1)
	for gi, g := range groups {
		x0 := marginL + float64(gi)*groupW
		for si, v := range g.Values {
			if si >= len(seriesNames) {
				break
			}
			h := v / yMax * plotH
			fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s %s: %.2f</title></rect>`+"\n",
				x0+float64(si)*barW+barW/2, marginT+plotH-h, barW*0.9, h,
				palette[si%len(palette)], escape(g.Label), escape(seriesNames[si]), v)
		}
		fmt.Fprintf(&sb, `<text x="%.1f" y="%d" %s text-anchor="middle">%s</text>`+"\n",
			x0+groupW/2, chartH-marginB+14, labelStyle, escape(g.Label))
	}
	for si, name := range seriesNames {
		fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"/>`+"\n",
			chartW-140, marginT+si*legendDY, legendSwatch, legendSwatch, palette[si%len(palette)])
		fmt.Fprintf(&sb, `<text x="%d" y="%d" %s>%s</text>`+"\n",
			chartW-140+legendSwatch+4, marginT+si*legendDY+9, labelStyle, escape(name))
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

func header(sb *strings.Builder, title string) {
	fmt.Fprintf(sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		chartW, chartH, chartW, chartH)
	fmt.Fprintf(sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", chartW, chartH)
	fmt.Fprintf(sb, `<text x="%d" y="18" %s>%s</text>`+"\n", marginL, titleStyle, escape(title))
}

func axes(sb *strings.Builder, xLabel, yLabel string, xMax, yMax float64) {
	fmt.Fprintf(sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" %s/>`+"\n",
		marginL, marginT+plotH, marginL+plotW, marginT+plotH, axisStyle)
	fmt.Fprintf(sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" %s/>`+"\n",
		marginL, marginT, marginL, marginT+plotH, axisStyle)
	for i := 0; i <= defaultTicks; i++ {
		frac := float64(i) / defaultTicks
		y := marginT + plotH - frac*plotH
		fmt.Fprintf(sb, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" %s/>`+"\n",
			marginL, y, marginL+plotW, y, gridStyle)
		fmt.Fprintf(sb, `<text x="%d" y="%.1f" %s text-anchor="end">%s</text>`+"\n",
			marginL-5, y+4, labelStyle, formatTick(frac*yMax))
		if xMax > 0 {
			x := marginL + frac*plotW
			fmt.Fprintf(sb, `<text x="%.1f" y="%d" %s text-anchor="middle">%s</text>`+"\n",
				x, marginT+plotH+14, labelStyle, formatTick(frac*xMax))
		}
	}
	if yLabel != "" {
		fmt.Fprintf(sb, `<text x="14" y="%d" %s transform="rotate(-90 14 %d)">%s</text>`+"\n",
			marginT+plotH/2, labelStyle, marginT+plotH/2, escape(yLabel))
	}
	if xLabel != "" {
		fmt.Fprintf(sb, `<text x="%d" y="%d" %s text-anchor="middle">%s</text>`+"\n",
			marginL+plotW/2, chartH-8, labelStyle, escape(xLabel))
	}
}

func formatTick(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	case v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
