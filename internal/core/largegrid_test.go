package core

import (
	"os"
	"testing"

	"photon/internal/sim/emu"
	"photon/internal/sim/gpu"
	"photon/internal/sim/isa"
	"photon/internal/sim/kernel"
	"photon/internal/sim/mem"
)

// largeGridProgram is a pure-ALU loop kernel (no memory traffic) so the
// large-grid smoke test measures the sampled-mode fast-forward machinery,
// not the memory system.
func largeGridProgram() *isa.Program {
	b := isa.NewBuilder("large-grid-loop")
	b.I(isa.OpSMov, isa.S(4), isa.Imm(0))
	b.Label("top")
	b.I(isa.OpVAdd, isa.V(1), isa.V(0), isa.S(4))
	b.I(isa.OpVMul, isa.V(2), isa.V(1), isa.V(1))
	b.I(isa.OpSAdd, isa.S(4), isa.S(4), isa.Imm(1))
	b.I(isa.OpSCmpLt, isa.Operand{}, isa.S(4), isa.Imm(32))
	b.Br(isa.OpCBranchSCC1, "top")
	b.End()
	return b.MustBuild()
}

// TestLargeGridSampledMode pushes >100k warps through the kernel-sampling
// fast-forward: the batched replayer must functionally execute the whole
// grid through the slab store without blowing up memory or time. The run
// takes a few seconds, so it is gated behind PHOTON_LARGE_GRID=1 and runs
// in CI's bench job.
func TestLargeGridSampledMode(t *testing.T) {
	if os.Getenv("PHOTON_LARGE_GRID") != "1" {
		t.Skip("set PHOTON_LARGE_GRID=1 to run the large-grid smoke test")
	}
	const groups, wpg = 25600, 4 // 102400 warps
	l := &kernel.Launch{
		Name: "large-grid", Program: largeGridProgram(), Memory: mem.NewFlat(),
		NumWorkgroups: groups, WarpsPerGroup: wpg,
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	warps := l.TotalWarps()
	if warps < 100_000 {
		t.Fatalf("grid too small for a large-grid test: %d warps", warps)
	}

	// Every warp runs the same straight 32-trip loop; one reference warp
	// gives the exact per-warp instruction count.
	ref := emu.NewWarp(l, 0, nil)
	var info emu.StepInfo
	for !ref.Done() {
		ref.Step(&info)
	}
	perWarp := ref.InstCount()

	ph := MustNew(smallGPU(), testParams(), Levels{Kernel: true})
	prof, err := AnalyzeOnline(l, ph.params.SampleFraction)
	if err != nil {
		t.Fatal(err)
	}
	// Seed history with a matching prior kernel so RunKernel takes the
	// functional fast-forward branch instead of detailed simulation.
	ph.History().Add(KernelRecord{
		Name:         "large-grid-prior",
		GPU:          prof.GPU,
		Warps:        warps,
		Insts:        float64(warps) * prof.MeanWarpInsts,
		SampledInsts: float64(prof.SampledInsts),
		SimTime:      float64(warps) * prof.MeanWarpInsts / 2, // IPC 2
	})

	res, err := ph.RunKernel(gpu.New(smallGPU()), l)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "kernel-sampling" {
		t.Fatalf("mode = %q, want kernel-sampling (history did not match)", res.Mode)
	}
	if want := perWarp * uint64(warps); res.Insts != want {
		t.Fatalf("fast-forward executed %d instructions, want %d (%d warps x %d)",
			res.Insts, want, warps, perWarp)
	}
	if res.SimTime == 0 {
		t.Fatal("predicted SimTime is zero")
	}
}
