package isa

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// BasicBlock is a single-entry single-exit run of instructions. Following
// the paper, blocks end at branch instructions, s_barrier, and s_endpgm, and
// begin at PC 0, at branch targets, and immediately after a block-ending
// instruction. A block is identified by the PC of its first instruction plus
// its length.
type BasicBlock struct {
	ID      int // index in Program.Blocks
	StartPC int
	Len     int
}

// Key returns the (startPC, length) identity the paper uses to distinguish
// basic blocks.
func (b BasicBlock) Key() BlockKey { return BlockKey{StartPC: b.StartPC, Len: b.Len} }

// BlockKey identifies a basic block by start PC and instruction count.
type BlockKey struct {
	StartPC int
	Len     int
}

// String formats the key as "pcSTART/LEN".
func (k BlockKey) String() string { return fmt.Sprintf("pc%d/%d", k.StartPC, k.Len) }

// Program is an immutable compiled kernel program: a flat instruction list
// plus its basic-block structure.
type Program struct {
	Name      string
	Insts     []Inst
	Blocks    []BasicBlock
	blockOfPC []int  // PC -> block index
	blockHead []bool // PC -> is the first instruction of its block

	// NumVRegs and NumSRegs are the register-file sizes the program needs
	// (highest index used + 1).
	NumVRegs int
	NumSRegs int
	// LDSBytes is the local-data-share allocation per workgroup.
	LDSBytes int
	// Fingerprint hashes the full instruction stream and the block options.
	// Two programs with the same fingerprint have identical code and block
	// structure, so their basic blocks are directly comparable; the sampling
	// layers namespace BBVs by it so blocks from unrelated programs never
	// collide.
	Fingerprint uint64

	opts BlockOptions
}

// BlockOptions selects the basic-block boundary rules.
type BlockOptions struct {
	// SplitAtWaitcnt additionally ends blocks at s_waitcnt, isolating each
	// set of memory accesses in its own block — the variant the paper
	// sketches as future work in Observation 3.
	SplitAtWaitcnt bool
}

// NewProgram validates the instruction list and computes the basic-block
// structure.
func NewProgram(name string, insts []Inst, ldsBytes int) (*Program, error) {
	if len(insts) == 0 {
		return nil, fmt.Errorf("isa: program %q has no instructions", name)
	}
	p := &Program{Name: name, Insts: insts, LDSBytes: ldsBytes}
	for pc := range p.Insts {
		p.Insts[pc].PC = pc
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	p.computeRegCounts()
	p.computeBlocks()
	p.computeFingerprint()
	return p, nil
}

// MustProgram is NewProgram that panics on error; kernel builders use it for
// statically-known-good programs.
func MustProgram(name string, insts []Inst, ldsBytes int) *Program {
	p, err := NewProgram(name, insts, ldsBytes)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *Program) validate() error {
	last := p.Insts[len(p.Insts)-1]
	if last.Op != OpSEndpgm && last.Op != OpSBranch {
		return fmt.Errorf("isa: program %q does not end with s_endpgm or a branch", p.Name)
	}
	sawEnd := false
	for pc, in := range p.Insts {
		if in.Op >= opCount {
			return fmt.Errorf("isa: %q pc%d: invalid opcode %d", p.Name, pc, in.Op)
		}
		if in.Op.IsBranch() {
			if in.Target < 0 || in.Target >= len(p.Insts) {
				return fmt.Errorf("isa: %q pc%d: branch target %d out of range", p.Name, pc, in.Target)
			}
		}
		if in.Op == OpSEndpgm {
			sawEnd = true
		}
	}
	if !sawEnd {
		return fmt.Errorf("isa: program %q has no s_endpgm", p.Name)
	}
	return nil
}

func (p *Program) computeRegCounts() {
	maxS, maxV := -1, -1
	scan := func(o Operand) {
		switch o.Kind {
		case OperandSReg:
			if int(o.Idx) > maxS {
				maxS = int(o.Idx)
			}
		case OperandVReg:
			if int(o.Idx) > maxV {
				maxV = int(o.Idx)
			}
		}
	}
	for _, in := range p.Insts {
		scan(in.Dst)
		scan(in.Src0)
		scan(in.Src1)
		scan(in.Src2)
	}
	p.NumSRegs = maxS + 1
	p.NumVRegs = maxV + 1
}

func (p *Program) endsBlock(op Op) bool {
	if p.opts.SplitAtWaitcnt && op == OpSWaitcnt {
		return true
	}
	return op.EndsBasicBlock()
}

func (p *Program) computeBlocks() {
	starts := make([]bool, len(p.Insts))
	starts[0] = true
	for pc, in := range p.Insts {
		if in.Op.IsBranch() {
			starts[in.Target] = true
		}
		if p.endsBlock(in.Op) && pc+1 < len(p.Insts) {
			starts[pc+1] = true
		}
	}
	p.blockOfPC = make([]int, len(p.Insts))
	p.blockHead = make([]bool, len(p.Insts))
	blockStart := 0
	flush := func(end int) {
		b := BasicBlock{ID: len(p.Blocks), StartPC: blockStart, Len: end - blockStart}
		p.Blocks = append(p.Blocks, b)
		p.blockHead[blockStart] = true
		for pc := blockStart; pc < end; pc++ {
			p.blockOfPC[pc] = b.ID
		}
	}
	for pc := 1; pc < len(p.Insts); pc++ {
		if starts[pc] {
			flush(pc)
			blockStart = pc
		}
	}
	flush(len(p.Insts))
}

func (p *Program) computeFingerprint() {
	h := fnv.New64a()
	var buf [20]byte
	put := func(o Operand, at int) {
		buf[at] = byte(o.Kind)
		buf[at+1] = byte(o.Idx)
		buf[at+2] = byte(o.Imm)
		buf[at+3] = byte(o.Imm >> 8)
	}
	for _, in := range p.Insts {
		buf[0] = byte(in.Op)
		put(in.Dst, 1)
		put(in.Src0, 5)
		put(in.Src1, 9)
		put(in.Src2, 13)
		buf[17] = byte(in.Offset)
		buf[18] = byte(in.Offset >> 8)
		buf[19] = byte(in.Target)
		h.Write(buf[:])
	}
	if p.opts.SplitAtWaitcnt {
		h.Write([]byte{1})
	}
	p.Fingerprint = h.Sum64()
}

// WithBlockOptions returns a program with the same instructions but basic
// blocks recomputed under the given options (the instructions are shared;
// block metadata is rebuilt). Programs with different options have different
// fingerprints, so their BBVs never mix.
func (p *Program) WithBlockOptions(o BlockOptions) *Program {
	if o == p.opts {
		return p
	}
	q := &Program{
		Name:     p.Name,
		Insts:    p.Insts,
		NumVRegs: p.NumVRegs,
		NumSRegs: p.NumSRegs,
		LDSBytes: p.LDSBytes,
		opts:     o,
	}
	q.computeBlocks()
	q.computeFingerprint()
	return q
}

// BlockAt returns the basic block containing pc.
func (p *Program) BlockAt(pc int) BasicBlock { return p.Blocks[p.blockOfPC[pc]] }

// BlockIndexAt returns the index of the basic block containing pc.
func (p *Program) BlockIndexAt(pc int) int { return p.blockOfPC[pc] }

// BlockStartsAt reports whether pc is the first instruction of its basic
// block (a per-PC table lookup; the emulator checks this on every step).
func (p *Program) BlockStartsAt(pc int) bool { return p.blockHead[pc] }

// NumBlocks returns the number of static basic blocks.
func (p *Program) NumBlocks() int { return len(p.Blocks) }

// Disassemble renders the whole program with block boundaries marked.
func (p *Program) Disassemble() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; program %s: %d insts, %d blocks, %d sregs, %d vregs, %d LDS bytes\n",
		p.Name, len(p.Insts), len(p.Blocks), p.NumSRegs, p.NumVRegs, p.LDSBytes)
	for _, in := range p.Insts {
		if b := p.BlockAt(in.PC); b.StartPC == in.PC {
			fmt.Fprintf(&sb, "BB%d (%s):\n", b.ID, b.Key())
		}
		fmt.Fprintf(&sb, "  pc%-5d %s\n", in.PC, in)
	}
	return sb.String()
}
