package core

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"photon/internal/core/bbv"
	"photon/internal/sim/gpu"
	"photon/internal/workloads"
)

func TestAnalysisStoreRoundTrip(t *testing.T) {
	app, err := workloads.BuildSPMV(64)
	if err != nil {
		t.Fatal(err)
	}
	l := app.Launches[0]
	prof, err := AnalyzeOnline(l, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	s := NewAnalysisStore()
	if _, ok := s.Get(l); ok {
		t.Fatal("empty store returned a profile")
	}
	s.Put(l, prof)
	got, ok := s.Get(l)
	if !ok {
		t.Fatal("stored profile not found")
	}
	if got.SampledWarps != prof.SampledWarps || got.SampledInsts != prof.SampledInsts {
		t.Fatal("sample counts differ after round trip")
	}
	if len(got.Types) != len(prof.Types) {
		t.Fatal("type counts differ")
	}
	if d := bbv.Distance(got.GPU, prof.GPU); d > 1e-12 {
		t.Fatalf("GPU BBV differs after round trip: %v", d)
	}
	if math.Abs(got.MeanWarpInsts-prof.MeanWarpInsts) > 1e-9 {
		t.Fatal("mean warp insts differ")
	}
	if s.Hits() != 1 || s.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", s.Hits(), s.Misses())
	}
}

func TestAnalysisStoreSerialization(t *testing.T) {
	app, err := workloads.BuildFIR(32)
	if err != nil {
		t.Fatal(err)
	}
	l := app.Launches[0]
	prof, err := AnalyzeOnline(l, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	s := NewAnalysisStore()
	s.Put(l, prof)

	var buf bytes.Buffer
	if err := s.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := NewAnalysisStore()
	if err := s2.Decode(&buf); err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(l)
	if !ok {
		t.Fatal("profile lost through serialization")
	}
	if got.SampledInsts != prof.SampledInsts {
		t.Fatal("profile corrupted through serialization")
	}
}

func TestAnalysisStoreFileIO(t *testing.T) {
	app, err := workloads.BuildReLU(16)
	if err != nil {
		t.Fatal(err)
	}
	l := app.Launches[0]
	prof, err := AnalyzeOnline(l, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	s := NewAnalysisStore()
	s.Put(l, prof)
	path := filepath.Join(t.TempDir(), "store.json")
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	s2 := NewAnalysisStore()
	if err := s2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("loaded %d profiles, want 1", s2.Len())
	}
}

func TestLaunchKeyDistinguishesLaunches(t *testing.T) {
	a1, _ := workloads.BuildReLU(16)
	a2, _ := workloads.BuildReLU(32)
	if launchKey(a1.Launches[0]) == launchKey(a2.Launches[0]) {
		t.Fatal("different sizes share a launch key")
	}
	a3, _ := workloads.BuildReLU(16)
	if launchKey(a1.Launches[0]) != launchKey(a3.Launches[0]) {
		t.Fatal("identical builds have different launch keys")
	}
}

// TestOfflinePhotonMatchesOnline runs PageRank twice under Photon — once
// cold, once with the warmed store — and checks both predict identical
// kernel times (offline mode is a pure cache) while the second run serves
// analyses from the store.
func TestOfflinePhotonMatchesOnline(t *testing.T) {
	build := func() *workloads.App {
		app, err := workloads.BuildPageRank(64 * 64)
		if err != nil {
			t.Fatal(err)
		}
		return app
	}
	store := NewAnalysisStore()

	runOnce := func() []gpu.KernelResult {
		g := gpu.New(smallGPU())
		ph := MustNew(smallGPU(), testParams(), AllLevels())
		ph.SetStore(store)
		var out []gpu.KernelResult
		for _, l := range build().Launches {
			r, err := ph.RunKernel(g, l)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, r)
		}
		return out
	}

	first := runOnce()
	missesAfterFirst := store.Misses()
	second := runOnce()
	if store.Misses() != missesAfterFirst {
		t.Fatalf("second run missed the store (%d -> %d misses)",
			missesAfterFirst, store.Misses())
	}
	if store.Hits() == 0 {
		t.Fatal("second run never hit the store")
	}
	for i := range first {
		if first[i].SimTime != second[i].SimTime {
			t.Fatalf("kernel %d: offline time %d != online time %d",
				i, second[i].SimTime, first[i].SimTime)
		}
	}
}
