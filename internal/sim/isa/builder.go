package isa

import "fmt"

// Builder assembles a Program with symbolic labels, in the style of a tiny
// assembler. Kernel generators in internal/workloads use it to emit
// parameterized programs.
//
//	b := isa.NewBuilder("axpy")
//	b.I(isa.OpVMul, isa.V(2), isa.V(0), isa.S(4))
//	b.Label("loop")
//	...
//	b.Br(isa.OpCBranchSCC1, "loop")
//	b.I(isa.OpSEndpgm)
//	prog := b.MustBuild()
type Builder struct {
	name     string
	insts    []Inst
	labels   map[string]int
	fixups   []fixup
	ldsBytes int
	errs     []error
}

type fixup struct {
	pc    int
	label string
}

// NewBuilder returns an empty builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int)}
}

// SetLDS declares the per-workgroup local-data-share size in bytes.
func (b *Builder) SetLDS(bytes int) { b.ldsBytes = bytes }

// Len returns the number of instructions emitted so far (the PC of the next
// instruction).
func (b *Builder) Len() int { return len(b.insts) }

// Label defines a branch target at the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("isa: duplicate label %q", name))
		return
	}
	b.labels[name] = len(b.insts)
}

// I emits a generic instruction: opcode, then destination and up to three
// sources. Operand order is (dst, src0, src1, src2); trailing operands may
// be omitted.
func (b *Builder) I(op Op, operands ...Operand) {
	in := Inst{Op: op}
	if len(operands) > 0 {
		in.Dst = operands[0]
	}
	if len(operands) > 1 {
		in.Src0 = operands[1]
	}
	if len(operands) > 2 {
		in.Src1 = operands[2]
	}
	if len(operands) > 3 {
		in.Src2 = operands[3]
	}
	b.insts = append(b.insts, in)
}

// Load emits a memory load (OpSLoad, OpVLoad or OpLDSLoad) with a byte
// offset: dst = mem[src + offset].
func (b *Builder) Load(op Op, dst, addr Operand, offset int32) {
	b.insts = append(b.insts, Inst{Op: op, Dst: dst, Src0: addr, Offset: offset})
}

// Store emits a memory store (OpVStore or OpLDSStore) with a byte offset:
// mem[addr + offset] = val.
func (b *Builder) Store(op Op, addr, val Operand, offset int32) {
	b.insts = append(b.insts, Inst{Op: op, Src0: addr, Src1: val, Offset: offset})
}

// Br emits a branch to a label (which may be defined later).
func (b *Builder) Br(op Op, label string) {
	if !op.IsBranch() {
		b.errs = append(b.errs, fmt.Errorf("isa: Br with non-branch op %s", op))
		return
	}
	b.fixups = append(b.fixups, fixup{pc: len(b.insts), label: label})
	b.insts = append(b.insts, Inst{Op: op})
}

// Waitcnt emits s_waitcnt allowing at most n outstanding vector-memory ops.
func (b *Builder) Waitcnt(n int32) {
	b.insts = append(b.insts, Inst{Op: OpSWaitcnt, Offset: n})
}

// Barrier emits s_barrier.
func (b *Builder) Barrier() { b.I(OpSBarrier) }

// End emits s_endpgm.
func (b *Builder) End() { b.I(OpSEndpgm) }

// Build resolves labels and returns the validated program.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("isa: program %q: undefined label %q", b.name, f.label)
		}
		b.insts[f.pc].Target = target
	}
	return NewProgram(b.name, b.insts, b.ldsBytes)
}

// MustBuild is Build that panics on error.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
